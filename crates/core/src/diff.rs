//! Behavior-model diffing: what changed between two learned models?
//!
//! §7.3 recommends periodically retraining models as device behavior
//! drifts, and §7.2 proposes validating deployments against published
//! profiles. Both need an answer to "how does the new model differ from
//! the old one?" beyond per-window deviation scores. This module compares
//! two system models (PFSMs) and two periodic-model sets structurally:
//! states/groups that appeared or disappeared, and transitions/periods
//! whose values shifted significantly.

use crate::periodic::PeriodicModelSet;
use crate::system::SystemModel;
use behaviot_pfsm::model::{StateId, FINAL, INITIAL};
use std::collections::{BTreeMap, BTreeSet};

/// A change in the system model's transition structure.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemChange {
    /// An event label present only in the new model.
    EventAdded(String),
    /// An event label present only in the old model.
    EventRemoved(String),
    /// A transition whose probability moved by more than the tolerance.
    TransitionShifted {
        /// Source label.
        from: String,
        /// Destination label.
        to: String,
        /// Probability in the old model.
        old_p: f64,
        /// Probability in the new model.
        new_p: f64,
    },
}

impl std::fmt::Display for SystemChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemChange::EventAdded(e) => write!(f, "new event: {e}"),
            SystemChange::EventRemoved(e) => write!(f, "event no longer observed: {e}"),
            SystemChange::TransitionShifted {
                from,
                to,
                old_p,
                new_p,
            } => {
                write!(f, "transition {from} -> {to}: {old_p:.2} -> {new_p:.2}")
            }
        }
    }
}

fn label_of(model: &SystemModel, s: StateId) -> String {
    if s == INITIAL {
        "INITIAL".to_string()
    } else if s == FINAL {
        "FINAL".to_string()
    } else {
        model
            .pfsm
            .event_of(s)
            .map(|e| model.log.vocab.name(e).to_string())
            .unwrap_or_else(|| format!("s{}", s.0))
    }
}

/// Label-level transition probabilities of a system model. States sharing
/// an event label (refinement splits) are aggregated by transition count,
/// which makes two independently trained models comparable.
fn label_transitions(model: &SystemModel) -> BTreeMap<(String, String), f64> {
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for (from, to, c, _) in model.pfsm.transitions() {
        let fl = label_of(model, from);
        let tl = label_of(model, to);
        *counts.entry((fl.clone(), tl)).or_insert(0) += c;
        *totals.entry(fl).or_insert(0) += c;
    }
    counts
        .into_iter()
        .map(|((f, t), c)| {
            let p = c as f64 / totals[&f] as f64;
            ((f, t), p)
        })
        .collect()
}

/// Compare two system models. `tolerance` bounds acceptable
/// transition-probability drift (e.g. `0.15`). Changes are ordered:
/// additions, removals, then shifts by decreasing magnitude.
pub fn diff_system_models(
    old: &SystemModel,
    new: &SystemModel,
    tolerance: f64,
) -> Vec<SystemChange> {
    let old_events: BTreeSet<String> = (0..old.log.vocab.len() as u32)
        .map(|i| old.log.vocab.name(behaviot_pfsm::EventId(i)).to_string())
        .collect();
    let new_events: BTreeSet<String> = (0..new.log.vocab.len() as u32)
        .map(|i| new.log.vocab.name(behaviot_pfsm::EventId(i)).to_string())
        .collect();

    let mut out: Vec<SystemChange> = Vec::new();
    for e in new_events.difference(&old_events) {
        out.push(SystemChange::EventAdded(e.clone()));
    }
    for e in old_events.difference(&new_events) {
        out.push(SystemChange::EventRemoved(e.clone()));
    }

    let old_t = label_transitions(old);
    let new_t = label_transitions(new);
    let mut shifts: Vec<SystemChange> = Vec::new();
    let keys: BTreeSet<&(String, String)> = old_t.keys().chain(new_t.keys()).collect();
    for key in keys {
        // Transitions touching added/removed events are already reported.
        if !old_events.contains(&key.0) && key.0 != "INITIAL"
            || !old_events.contains(&key.1) && key.1 != "FINAL"
            || !new_events.contains(&key.0) && key.0 != "INITIAL"
            || !new_events.contains(&key.1) && key.1 != "FINAL"
        {
            continue;
        }
        let old_p = old_t.get(key).copied().unwrap_or(0.0);
        let new_p = new_t.get(key).copied().unwrap_or(0.0);
        if (old_p - new_p).abs() > tolerance {
            shifts.push(SystemChange::TransitionShifted {
                from: key.0.clone(),
                to: key.1.clone(),
                old_p,
                new_p,
            });
        }
    }
    shifts.sort_by(|a, b| {
        let mag = |c: &SystemChange| match c {
            SystemChange::TransitionShifted { old_p, new_p, .. } => (old_p - new_p).abs(),
            _ => 0.0,
        };
        mag(b)
            .partial_cmp(&mag(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out.extend(shifts);
    out
}

/// A change in the periodic-model inventory.
#[derive(Debug, Clone, PartialEq)]
pub enum PeriodicChange {
    /// A traffic group modeled only in the new set (new endpoint — e.g.
    /// after a firmware update adds telemetry).
    GroupAdded {
        /// Device address as text.
        device: String,
        /// Destination + protocol.
        group: String,
    },
    /// A traffic group modeled only in the old set (endpoint gone).
    GroupRemoved {
        /// Device address as text.
        device: String,
        /// Destination + protocol.
        group: String,
    },
    /// The dominant period of a shared group moved by more than the
    /// relative tolerance.
    PeriodShifted {
        /// Device address as text.
        device: String,
        /// Destination + protocol.
        group: String,
        /// Old dominant period (seconds).
        old_period: f64,
        /// New dominant period (seconds).
        new_period: f64,
    },
}

impl std::fmt::Display for PeriodicChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeriodicChange::GroupAdded { device, group } => {
                write!(f, "{device}: new periodic endpoint {group}")
            }
            PeriodicChange::GroupRemoved { device, group } => {
                write!(f, "{device}: periodic endpoint gone {group}")
            }
            PeriodicChange::PeriodShifted {
                device,
                group,
                old_period,
                new_period,
            } => {
                write!(
                    f,
                    "{device}: {group} period {old_period:.0}s -> {new_period:.0}s"
                )
            }
        }
    }
}

/// Compare two periodic-model sets (e.g. lab-trained vs freshly retrained).
/// `rel_tolerance` bounds acceptable relative period drift (e.g. `0.1`).
pub fn diff_periodic_models(
    old: &PeriodicModelSet,
    new: &PeriodicModelSet,
    rel_tolerance: f64,
) -> Vec<PeriodicChange> {
    let key_of = |m: &crate::periodic::PeriodicModel| {
        (
            m.device.to_string(),
            format!("{}-{}", m.proto, m.destination),
        )
    };
    let old_map: BTreeMap<(String, String), f64> =
        old.iter().map(|m| (key_of(m), m.period())).collect();
    let new_map: BTreeMap<(String, String), f64> =
        new.iter().map(|m| (key_of(m), m.period())).collect();

    let mut out = Vec::new();
    for ((device, group), &new_period) in &new_map {
        match old_map.get(&(device.clone(), group.clone())) {
            None => out.push(PeriodicChange::GroupAdded {
                device: device.clone(),
                group: group.clone(),
            }),
            Some(&old_period) => {
                if (old_period - new_period).abs() / old_period.max(1e-9) > rel_tolerance {
                    out.push(PeriodicChange::PeriodShifted {
                        device: device.clone(),
                        group: group.clone(),
                        old_period,
                        new_period,
                    });
                }
            }
        }
    }
    for (device, group) in old_map.keys() {
        if !new_map.contains_key(&(device.clone(), group.clone())) {
            out.push(PeriodicChange::GroupRemoved {
                device: device.clone(),
                group: group.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::periodic::PeriodicTrainConfig;
    use crate::system::SystemModelConfig;
    use behaviot_flows::{FlowRecord, N_FEATURES};
    use behaviot_net::Proto;
    use std::net::Ipv4Addr;

    fn model(traces: &[Vec<String>]) -> SystemModel {
        SystemModel::from_traces(traces, &SystemModelConfig::default())
    }

    fn t(labels: &[&str]) -> Vec<String> {
        labels.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_models_no_diff() {
        let traces = vec![t(&["a", "b"]), t(&["a", "c"])];
        let d = diff_system_models(&model(&traces), &model(&traces), 0.1);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn added_and_removed_events() {
        let old = model(&[t(&["a", "b"])]);
        let new = model(&[t(&["a", "z"])]);
        let d = diff_system_models(&old, &new, 0.1);
        assert!(d.contains(&SystemChange::EventAdded("z".into())));
        assert!(d.contains(&SystemChange::EventRemoved("b".into())));
    }

    #[test]
    fn shifted_transition_reported_and_ranked() {
        // a->b goes from 80% to 20%.
        let old: Vec<Vec<String>> = (0..10)
            .map(|i| {
                if i < 8 {
                    t(&["a", "b"])
                } else {
                    t(&["a", "c"])
                }
            })
            .collect();
        let new: Vec<Vec<String>> = (0..10)
            .map(|i| {
                if i < 2 {
                    t(&["a", "b"])
                } else {
                    t(&["a", "c"])
                }
            })
            .collect();
        let d = diff_system_models(&model(&old), &model(&new), 0.15);
        let shift = d
            .iter()
            .find_map(|c| match c {
                SystemChange::TransitionShifted {
                    from,
                    to,
                    old_p,
                    new_p,
                } if from == "a" && to == "b" => Some((*old_p, *new_p)),
                _ => None,
            })
            .expect("a->b shift reported");
        assert!((shift.0 - 0.8).abs() < 1e-9 && (shift.1 - 0.2).abs() < 1e-9);
        assert!(d.iter().any(|c| c.to_string().contains("a -> c")));
    }

    fn flows(dest: &str, period: f64, n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                let mut features = [0.0; N_FEATURES];
                features[0] = 120.0;
                FlowRecord {
                    device: Ipv4Addr::new(192, 168, 1, 10),
                    remote: Ipv4Addr::new(52, 0, 0, 1),
                    device_port: 30000,
                    remote_port: 443,
                    proto: Proto::Tcp,
                    domain: Some(dest.into()),
                    start: i as f64 * period,
                    end: i as f64 * period + 0.1,
                    n_packets: 4,
                    total_bytes: 480,
                    features,
                }
            })
            .collect()
    }

    #[test]
    fn periodic_diff_detects_all_three_changes() {
        let cfg = PeriodicTrainConfig::default();
        let mut old_flows = flows("keep.example.com", 120.0, 400);
        old_flows.extend(flows("gone.example.com", 300.0, 200));
        let old = PeriodicModelSet::train(&old_flows, &cfg);

        let mut new_flows = flows("keep.example.com", 240.0, 200); // period doubled
        new_flows.extend(flows("added.example.com", 60.0, 700));
        let new = PeriodicModelSet::train(&new_flows, &cfg);

        let d = diff_periodic_models(&old, &new, 0.1);
        assert!(
            d.iter().any(
                |c| matches!(c, PeriodicChange::GroupAdded { group, .. } if group.contains("added"))
            ),
            "{d:?}"
        );
        assert!(d.iter().any(
            |c| matches!(c, PeriodicChange::GroupRemoved { group, .. } if group.contains("gone"))
        ));
        assert!(d.iter().any(
            |c| matches!(c, PeriodicChange::PeriodShifted { group, .. } if group.contains("keep"))
        ));
        // Display strings are readable.
        assert!(d.iter().any(|c| c.to_string().contains("period")));
    }

    #[test]
    fn periodic_diff_identical_empty() {
        let cfg = PeriodicTrainConfig::default();
        let f = flows("x.example.com", 100.0, 300);
        let a = PeriodicModelSet::train(&f, &cfg);
        let b = PeriodicModelSet::train(&f, &cfg);
        assert!(diff_periodic_models(&a, &b, 0.1).is_empty());
    }
}
