//! Per-device fleet health: a deterministic state machine folding the
//! monitor's deviation stream and the ingest-gate drop budget into one
//! operator-facing state per device, with fleet rollup metrics.
//!
//! # States and hysteresis
//!
//! - **Healthy** — recent windows carried traffic, no deviations, ingest
//!   drops within budget.
//! - **Deviant** — a deviation implicated the device this window, or the
//!   device has not yet strung together [`HealthConfig::recover_after`]
//!   clean windows since one did.
//! - **Degraded** — no deviation, but the ingest gates dropped more than
//!   [`HealthConfig::degrade_drop_frac`] of the window's records, so a
//!   quiet verdict is not trustworthy evidence of health.
//! - **Stale** — no traffic at all for [`HealthConfig::stale_after`]
//!   consecutive windows; the models have nothing to judge.
//!
//! Recovery is hysteretic: a device leaves Deviant/Degraded/Stale only
//! after `recover_after` consecutive *clean* windows — windows where it was
//! seen, implicated in nothing, and under the drop budget. Deviations and
//! over-budget windows reset the streak; silent windows freeze it (absence
//! of evidence is not evidence of recovery). This keeps a device that
//! deviates every few windows pinned at Deviant instead of oscillating.
//!
//! # Determinism
//!
//! The registry is keyed and iterated via `BTreeMap<Symbol, _>` — [`Symbol`]
//! ordering is resolved-string ordering — so per-window transition records
//! and the exported state are in device-name order regardless of how the
//! per-window deviant/seen sets were accumulated. All inputs (deviation
//! stream, drop counters) are themselves policy-invariant, so health
//! outputs inherit the byte-determinism contract.

use crate::monitor::DeviationKind;
use behaviot_intern::{FxHashMap, FxHashSet, Symbol};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Fleet rollup gauges + transition counter, resolved once process-wide.
struct FleetMetrics {
    healthy: behaviot_obs::Gauge,
    degraded: behaviot_obs::Gauge,
    deviant: behaviot_obs::Gauge,
    stale: behaviot_obs::Gauge,
    transitions: behaviot_obs::Counter,
}

fn fleet_metrics() -> &'static FleetMetrics {
    static METRICS: OnceLock<FleetMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = behaviot_obs::metrics();
        FleetMetrics {
            healthy: m.gauge("fleet.healthy"),
            degraded: m.gauge("fleet.degraded"),
            deviant: m.gauge("fleet.deviant"),
            stale: m.gauge("fleet.stale"),
            transitions: m.counter("fleet.transitions"),
        }
    })
}

/// Operator-facing device state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Traffic present, no deviations, drops within budget.
    Healthy,
    /// Quiet, but ingest drops exceeded the budget — verdict untrusted.
    Degraded,
    /// Implicated in a deviation, not yet recovered.
    Deviant,
    /// No traffic for `stale_after` consecutive windows.
    Stale,
}

impl HealthState {
    /// Stable lowercase label (ledger records, store artifact).
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Deviant => "deviant",
            HealthState::Stale => "stale",
        }
    }

    /// Parse a [`Self::label`] back.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "healthy" => HealthState::Healthy,
            "degraded" => HealthState::Degraded,
            "deviant" => HealthState::Deviant,
            "stale" => HealthState::Stale,
            _ => return None,
        })
    }
}

/// Hysteresis thresholds of the health state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Ingest drop fraction above which a quiet window marks the device
    /// Degraded instead of counting toward recovery.
    pub degrade_drop_frac: f64,
    /// Consecutive clean windows required to return to Healthy.
    pub recover_after: u32,
    /// Consecutive silent windows before a device is Stale.
    pub stale_after: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            degrade_drop_frac: 0.01,
            recover_after: 3,
            stale_after: 3,
        }
    }
}

/// Per-device fold state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DeviceHealth {
    state: HealthState,
    /// Consecutive clean windows (seen + no deviation + under budget).
    clean_streak: u32,
    /// Consecutive windows without any traffic from the device.
    silent_windows: u32,
}

impl DeviceHealth {
    fn fresh() -> Self {
        Self {
            state: HealthState::Healthy,
            clean_streak: 0,
            silent_windows: 0,
        }
    }
}

/// One state change, in device-name order within the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthTransition {
    /// Device label.
    pub device: Symbol,
    /// State before this window.
    pub from: HealthState,
    /// State after this window.
    pub to: HealthState,
    /// Stable cause tag: `deviation:<kind>`, `ingest-drops`, `stale`, or
    /// `recovered`.
    pub reason: &'static str,
}

/// Exported registry state for durable checkpoints (the store's optional
/// `health` artifact). Records are sorted by device label.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthExport {
    /// The hysteresis configuration in effect.
    pub cfg: HealthConfig,
    /// Per-device `(device, state, clean_streak, silent_windows)` rows in
    /// device-name order.
    pub records: Vec<(Symbol, HealthState, u32, u32)>,
}

/// The fleet health registry: one [`HealthState`] per registered device,
/// folded window by window from the monitor's outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRegistry {
    cfg: HealthConfig,
    devices: BTreeMap<Symbol, DeviceHealth>,
    /// Transitions of the most recent window (reused buffer).
    transitions: Vec<HealthTransition>,
}

impl HealthRegistry {
    /// An empty registry with the given hysteresis configuration.
    pub fn new(cfg: HealthConfig) -> Self {
        Self {
            cfg,
            devices: BTreeMap::new(),
            transitions: Vec::new(),
        }
    }

    /// The hysteresis configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Register a device (idempotent; new devices start Healthy).
    pub fn register(&mut self, device: Symbol) {
        self.devices.entry(device).or_insert_with(DeviceHealth::fresh);
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// No devices registered?
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Current state of a device, if registered.
    pub fn state(&self, device: Symbol) -> Option<HealthState> {
        self.devices.get(&device).map(|d| d.state)
    }

    /// Iterate `(device, state)` in device-name order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, HealthState)> + '_ {
        self.devices.iter().map(|(&d, h)| (d, h.state))
    }

    /// Fold one window into every registered device and return the state
    /// transitions it caused, in device-name order.
    ///
    /// - `deviant`: devices implicated in a deviation this window (the kind
    ///   tags the transition reason). Symbols not registered are ignored.
    /// - `seen`: devices with at least one inferred event this window.
    /// - `drop_frac`: the ingest gates' drop fraction for this window
    ///   (0 when no ingest report is in scope).
    ///
    /// Allocation-free once the transition buffer has grown to its
    /// high-water mark and no transitions fire (the healthy steady state).
    pub fn observe_window(
        &mut self,
        deviant: &FxHashMap<Symbol, DeviationKind>,
        seen: &FxHashSet<Symbol>,
        drop_frac: f64,
    ) -> &[HealthTransition] {
        self.transitions.clear();
        let over_budget = drop_frac > self.cfg.degrade_drop_frac;
        for (&device, h) in self.devices.iter_mut() {
            let before = h.state;
            let is_seen = seen.contains(&device);
            if is_seen {
                h.silent_windows = 0;
            } else {
                h.silent_windows = h.silent_windows.saturating_add(1);
            }
            let mut reason = "";
            if let Some(kind) = deviant.get(&device) {
                h.clean_streak = 0;
                h.state = HealthState::Deviant;
                reason = match kind {
                    DeviationKind::PeriodicTiming => "deviation:periodic",
                    DeviationKind::ShortTerm => "deviation:short-term",
                    DeviationKind::LongTerm => "deviation:long-term",
                };
            } else if over_budget {
                // The verdict on this window is untrustworthy: freeze any
                // recovery and degrade devices that were Healthy (worse
                // states keep their worse verdict).
                h.clean_streak = 0;
                if h.state == HealthState::Healthy {
                    h.state = HealthState::Degraded;
                    reason = "ingest-drops";
                }
            } else if h.silent_windows >= self.cfg.stale_after {
                h.state = HealthState::Stale;
                reason = "stale";
            } else if is_seen {
                h.clean_streak = h.clean_streak.saturating_add(1);
                if h.state != HealthState::Healthy && h.clean_streak >= self.cfg.recover_after {
                    h.state = HealthState::Healthy;
                    reason = "recovered";
                }
            }
            // A silent-but-not-yet-stale window changes nothing: the clean
            // streak is frozen, not reset.
            if h.state != before {
                self.transitions.push(HealthTransition {
                    device,
                    from: before,
                    to: h.state,
                    reason,
                });
            }
        }
        fleet_metrics().transitions.add(self.transitions.len() as u64);
        self.publish_rollup();
        &self.transitions
    }

    /// Transitions of the most recent window (same slice
    /// [`Self::observe_window`] returned).
    pub fn last_transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// Count devices per state: `(healthy, degraded, deviant, stale)`.
    pub fn rollup(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for h in self.devices.values() {
            match h.state {
                HealthState::Healthy => counts.0 += 1,
                HealthState::Degraded => counts.1 += 1,
                HealthState::Deviant => counts.2 += 1,
                HealthState::Stale => counts.3 += 1,
            }
        }
        counts
    }

    /// Publish the rollup to the `fleet.*` gauges.
    pub fn publish_rollup(&self) {
        let (healthy, degraded, deviant, stale) = self.rollup();
        let m = fleet_metrics();
        m.healthy.set(healthy as i64);
        m.degraded.set(degraded as i64);
        m.deviant.set(deviant as i64);
        m.stale.set(stale as i64);
    }

    /// Snapshot the registry for a durable checkpoint, rows in device-name
    /// order.
    pub fn export(&self) -> HealthExport {
        HealthExport {
            cfg: self.cfg.clone(),
            records: self
                .devices
                .iter()
                .map(|(&d, h)| (d, h.state, h.clean_streak, h.silent_windows))
                .collect(),
        }
    }

    /// Rebuild a registry from an export. Continues the health timeline
    /// exactly where the exporting registry left off.
    pub fn restore(export: HealthExport) -> Self {
        let mut reg = Self::new(export.cfg);
        for (device, state, clean_streak, silent_windows) in export.records {
            reg.devices.insert(
                device,
                DeviceHealth {
                    state,
                    clean_streak,
                    silent_windows,
                },
            );
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn observe(
        reg: &mut HealthRegistry,
        deviant: &[(&str, DeviationKind)],
        seen: &[&str],
        drop_frac: f64,
    ) -> Vec<HealthTransition> {
        let deviant: FxHashMap<Symbol, DeviationKind> =
            deviant.iter().map(|&(d, k)| (sym(d), k)).collect();
        let seen: FxHashSet<Symbol> = seen.iter().map(|&d| sym(d)).collect();
        reg.observe_window(&deviant, &seen, drop_frac).to_vec()
    }

    #[test]
    fn state_labels_round_trip() {
        for s in [
            HealthState::Healthy,
            HealthState::Degraded,
            HealthState::Deviant,
            HealthState::Stale,
        ] {
            assert_eq!(HealthState::parse(s.label()), Some(s));
        }
        assert_eq!(HealthState::parse("zombie"), None);
    }

    #[test]
    fn deviation_marks_deviant_and_recovery_is_hysteretic() {
        let mut reg = HealthRegistry::new(HealthConfig::default());
        reg.register(sym("plug"));
        // Deviation: Healthy -> Deviant.
        let t = observe(&mut reg, &[("plug", DeviationKind::PeriodicTiming)], &["plug"], 0.0);
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].from, t[0].to), (HealthState::Healthy, HealthState::Deviant));
        assert_eq!(t[0].reason, "deviation:periodic");
        // Two clean windows: still Deviant (recover_after = 3).
        for _ in 0..2 {
            let t = observe(&mut reg, &[], &["plug"], 0.0);
            assert!(t.is_empty(), "{t:?}");
            assert_eq!(reg.state(sym("plug")), Some(HealthState::Deviant));
        }
        // Third clean window: recovered.
        let t = observe(&mut reg, &[], &["plug"], 0.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, HealthState::Healthy);
        assert_eq!(t[0].reason, "recovered");
    }

    #[test]
    fn deviation_resets_recovery_streak() {
        let mut reg = HealthRegistry::new(HealthConfig::default());
        reg.register(sym("cam"));
        observe(&mut reg, &[("cam", DeviationKind::LongTerm)], &["cam"], 0.0);
        observe(&mut reg, &[], &["cam"], 0.0);
        observe(&mut reg, &[], &["cam"], 0.0);
        // A fresh deviation on the verge of recovery restarts the count.
        observe(&mut reg, &[("cam", DeviationKind::LongTerm)], &["cam"], 0.0);
        for _ in 0..2 {
            observe(&mut reg, &[], &["cam"], 0.0);
            assert_eq!(reg.state(sym("cam")), Some(HealthState::Deviant));
        }
        observe(&mut reg, &[], &["cam"], 0.0);
        assert_eq!(reg.state(sym("cam")), Some(HealthState::Healthy));
    }

    #[test]
    fn drop_budget_degrades_quiet_devices_only() {
        let mut reg = HealthRegistry::new(HealthConfig::default());
        reg.register(sym("plug"));
        reg.register(sym("cam"));
        let t = observe(
            &mut reg,
            &[("cam", DeviationKind::ShortTerm)],
            &["plug", "cam"],
            0.5,
        );
        // cam: deviation wins over drops; plug: degraded.
        assert_eq!(reg.state(sym("cam")), Some(HealthState::Deviant));
        assert_eq!(reg.state(sym("plug")), Some(HealthState::Degraded));
        // Transitions are in device-name order (cam < plug).
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].device, sym("cam"));
        assert_eq!(t[1].device, sym("plug"));
        assert_eq!(t[1].reason, "ingest-drops");
        // Recovery once drops subside.
        for _ in 0..3 {
            observe(&mut reg, &[], &["plug", "cam"], 0.0);
        }
        assert_eq!(reg.state(sym("plug")), Some(HealthState::Healthy));
        assert_eq!(reg.state(sym("cam")), Some(HealthState::Healthy));
    }

    #[test]
    fn prolonged_silence_goes_stale_and_freezes_recovery() {
        let mut reg = HealthRegistry::new(HealthConfig::default());
        reg.register(sym("hub"));
        observe(&mut reg, &[("hub", DeviationKind::PeriodicTiming)], &[], 0.0);
        assert_eq!(reg.state(sym("hub")), Some(HealthState::Deviant));
        // Silent (not yet stale): state frozen, no sneaky recovery.
        observe(&mut reg, &[], &[], 0.0);
        assert_eq!(reg.state(sym("hub")), Some(HealthState::Deviant));
        // Third consecutive silent window: Stale.
        let t = observe(&mut reg, &[], &[], 0.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, HealthState::Stale);
        assert_eq!(t[0].reason, "stale");
        // Traffic resumes: three clean windows back to Healthy.
        observe(&mut reg, &[], &["hub"], 0.0);
        observe(&mut reg, &[], &["hub"], 0.0);
        let t = observe(&mut reg, &[], &["hub"], 0.0);
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].from, t[0].to), (HealthState::Stale, HealthState::Healthy));
    }

    #[test]
    fn rollup_counts_all_states() {
        let mut reg = HealthRegistry::new(HealthConfig::default());
        for d in ["a", "b", "c", "d"] {
            reg.register(sym(d));
        }
        observe(&mut reg, &[("a", DeviationKind::ShortTerm)], &["a", "b"], 0.0);
        observe(&mut reg, &[], &["a", "b"], 0.0);
        observe(&mut reg, &[], &["a", "b"], 0.0);
        // a: Deviant; b: Healthy; c, d: Stale after 3 silent windows.
        assert_eq!(reg.rollup(), (1, 0, 1, 2));
    }

    #[test]
    fn export_restore_round_trips() {
        let mut reg = HealthRegistry::new(HealthConfig {
            degrade_drop_frac: 0.05,
            recover_after: 2,
            stale_after: 4,
        });
        reg.register(sym("b"));
        reg.register(sym("a"));
        observe(&mut reg, &[("a", DeviationKind::LongTerm)], &["a"], 0.0);
        let export = reg.export();
        // Export rows are device-name ordered.
        assert_eq!(export.records[0].0, sym("a"));
        let restored = HealthRegistry::restore(export.clone());
        assert_eq!(restored.export(), export);
        assert_eq!(restored.state(sym("a")), Some(HealthState::Deviant));
        // The restored registry continues the same timeline.
        let mut orig = reg;
        let mut rest = restored;
        for _ in 0..3 {
            let a = observe(&mut orig, &[], &["a", "b"], 0.0);
            let b = observe(&mut rest, &[], &["a", "b"], 0.0);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn unregistered_deviants_are_ignored() {
        let mut reg = HealthRegistry::new(HealthConfig::default());
        reg.register(sym("known"));
        let t = observe(&mut reg, &[("ghost", DeviationKind::ShortTerm)], &["known"], 0.0);
        assert!(t.is_empty());
        assert_eq!(reg.state(sym("ghost")), None);
    }
}
