//! The behavior monitor: applies the deviation metrics to streaming
//! capture windows and reports significant deviations (§4.3/§6.2).
//!
//! The serving path is symbol-native and allocation-disciplined: steady
//! state (warmed scratch, healthy traffic) performs **zero** heap
//! allocations per window beyond emitted [`Deviation`] report strings —
//! pinned by `tests/monitor_alloc.rs`; the deviation stream is byte-
//! identical to the pre-rewrite String pipeline — pinned by
//! `tests/monitor_parity.rs` and the `benches/monitor.rs` agreement gate.

use crate::deviation::{
    long_term_threshold, periodic_metric_multi_explain, LongTermAccumulator, PERIODIC_THRESHOLD,
};
use crate::event::{EventKind, InferredEvent};
use crate::events::{BehavIoT, EventScratch};
use crate::health::{HealthConfig, HealthExport, HealthRegistry};
use crate::periodic::GroupKey;
use crate::system::SystemModel;
use behaviot_flows::FlowRecord;
use behaviot_intern::{FxHashMap, FxHashSet, Symbol};
use behaviot_net::IngestReport;
use behaviot_obs::ledger::{write_json_f64, write_json_str};
use behaviot_obs::{LedgerSink, NullSink};
use behaviot_pfsm::{EventId, ScoreScratch};
use std::fmt::Write as _;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

/// Counter handles for the monitor, resolved once process-wide (the
/// per-call registry lookup is lock-guarded; the serving path just
/// increments atomics).
struct MonitorMetrics {
    deviations: behaviot_obs::Counter,
    traces: behaviot_obs::Counter,
    ledger_records: behaviot_obs::Counter,
}

fn monitor_metrics() -> &'static MonitorMetrics {
    static METRICS: OnceLock<MonitorMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = behaviot_obs::metrics();
        MonitorMetrics {
            deviations: m.counter("monitor.deviations"),
            traces: m.counter("monitor.traces"),
            ledger_records: m.counter("monitor.ledger_records"),
        }
    })
}

/// Which metric raised a deviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviationKind {
    /// Periodic-event deviation (per-device metric).
    PeriodicTiming,
    /// Short-term (per-trace) system deviation.
    ShortTerm,
    /// Long-term (transition-frequency) system deviation.
    LongTerm,
}

impl DeviationKind {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            DeviationKind::PeriodicTiming => "periodic",
            DeviationKind::ShortTerm => "short-term",
            DeviationKind::LongTerm => "long-term",
        }
    }
}

/// A reported deviation: when, what, how large, and an explanation a
/// human (or an anomaly-detection system, §7.2) can act on.
#[derive(Debug, Clone)]
pub struct Deviation {
    /// Time the deviation was measured (window-relative events use their
    /// own time; absence checks use the window end).
    pub ts: f64,
    /// Raising metric.
    pub kind: DeviationKind,
    /// Metric value.
    pub score: f64,
    /// Threshold it exceeded.
    pub threshold: f64,
    /// Affected subject: device name, destination, or trace description.
    pub subject: String,
    /// Human-readable explanation.
    pub detail: String,
}

/// Monitor thresholds/configuration (defaults = the paper's §5.3 choices).
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Periodic-event metric threshold (knee of the CDF → 1.61).
    pub periodic_threshold: f64,
    /// Short-term threshold is `μ + n·σ` with this `n` (3 in the paper).
    pub short_sigma: f64,
    /// Long-term confidence interval (0.95 in the paper).
    pub long_confidence: f64,
    /// Minimum departures from a state before the long-term z-test is
    /// trusted (small-sample guard).
    pub long_min_n: usize,
    /// Minimum absolute difference between observed and expected
    /// transition *counts* — keeps borderline z-scores from spamming
    /// reports when many transitions are tested per window.
    pub long_min_count_diff: f64,
    /// Gap separating user-event traces (60 s).
    pub trace_gap: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            periodic_threshold: PERIODIC_THRESHOLD,
            short_sigma: 3.0,
            long_confidence: 0.95,
            long_min_n: 8,
            long_min_count_diff: 5.0,
            trace_gap: 60.0,
        }
    }
}

/// The monitor's cross-window streaming state, exported for durable
/// checkpoints. All three collections are sorted on export so the encoding
/// is deterministic regardless of hash-map iteration order; restoring them
/// into a fresh [`Monitor`] reproduces the exact deviation stream the
/// uninterrupted monitor would have emitted (pinned by
/// `tests/store_replay.rs`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorState {
    /// Per-group count-up timers: last event time per periodic group.
    pub last_seen: Vec<(GroupKey, f64)>,
    /// Devices whose ongoing silence has already been reported.
    pub absence_flagged: Vec<Ipv4Addr>,
    /// Long-term transitions currently in the deviating state.
    pub long_flagged: Vec<(Symbol, Symbol)>,
    /// Windows processed so far — the audit ledger's sequence counter, so
    /// a restored monitor's ledger records continue the numbering instead
    /// of restarting at zero.
    pub windows: u64,
}

/// Per-window scratch owned by the monitor: every buffer the serving path
/// needs, reused window after window so steady-state processing allocates
/// nothing. Maps that feed *emission order* (worst-gap/absent aggregation,
/// the still-deviating set) are deliberately **not** here — a reused map's
/// grown capacity would change its iteration order and break byte-parity
/// with the pre-rewrite deviation stream; fresh `FxHashMap::default()`
/// allocates nothing until first insert, so healthy windows stay free.
#[derive(Default)]
struct MonitorScratch {
    /// Inferred events of the current window.
    events: Vec<InferredEvent>,
    /// Event-inference scratch (sort index, user hits, periodic timers).
    infer: EventScratch,
    /// User events awaiting trace segmentation:
    /// `(ts, arrival index, label, device is known to the system model)`.
    user_buf: Vec<(f64, u32, Symbol, bool)>,
    /// `(device, activity)` → `(label, keep)` — renders `"<device>:<act>"`
    /// once per pair instead of once per event.
    label_cache: FxHashMap<(Ipv4Addr, Symbol), (Symbol, bool)>,
    /// Kept trace labels, all traces concatenated (CSR values).
    trace_labels: Vec<Symbol>,
    /// CSR row bounds into `trace_labels`; trace `i` spans
    /// `trace_bounds[i]..trace_bounds[i + 1]`.
    trace_bounds: Vec<u32>,
    /// Resolved event ids of the trace being scored.
    resolved: Vec<Option<EventId>>,
    /// Viterbi scratch.
    score: ScoreScratch,
    /// Long-term transition-counting scratch.
    longterm: LongTermAccumulator,
    /// Causal evidence aligned index-for-index with the window's emitted
    /// deviations (the audit ledger's `evidence` object).
    evidence: Vec<Evidence>,
    /// Ledger line render buffer, reused record to record.
    line: String,
    /// Devices implicated in a deviation this window (health attribution;
    /// never iterated, so reused capacity cannot affect emission order).
    deviant: FxHashMap<Symbol, DeviationKind>,
    /// Devices with at least one inferred event this window.
    seen: FxHashSet<Symbol>,
}

/// Causal evidence for one emitted [`Deviation`], rendered into the audit
/// ledger. Everything here is captured from the metric computation itself
/// — the timer and period behind a periodic score, the Viterbi probability
/// behind a trace score, the z-test inputs behind a long-term score.
#[derive(Debug, Clone, Copy)]
enum Evidence {
    /// An observed inter-event gap scored off schedule.
    Gap {
        device: Ipv4Addr,
        dest: Symbol,
        gap: f64,
        period: f64,
    },
    /// A silent periodic group's count-up timer ran past its period.
    Absence {
        device: Ipv4Addr,
        dest: Symbol,
        elapsed: f64,
        period: f64,
    },
    /// The testbed-outage collapse of many simultaneous absences.
    Outage { devices: usize },
    /// A user-event trace scored improbable under the PFSM.
    Trace { events: usize, log10_prob: f64 },
    /// A transition frequency failed the long-term z-test.
    Transition {
        from: Symbol,
        to: Symbol,
        observed_p: f64,
        model_p: f64,
        n: usize,
    },
}

/// Ingest accounting in effect for one monitor window: the gate counters
/// plus the record total they are measured against, recorded into the
/// audit ledger's window header.
#[derive(Debug, Clone, Copy)]
pub struct WindowIngest<'a> {
    /// Gate counters accumulated while ingesting this window's capture.
    pub report: &'a IngestReport,
    /// Total records the counters are a fraction of.
    pub records_total: u64,
}

impl<'a> WindowIngest<'a> {
    /// Fraction of records the gates dropped.
    pub fn drop_frac(&self) -> f64 {
        self.report.drop_frac(self.records_total)
    }
}

/// The streaming monitor. Feed it capture windows (e.g. one day at a
/// time); it keeps per-group count-up timers across windows.
pub struct Monitor {
    models: BehavIoT,
    system: SystemModel,
    cfg: MonitorConfig,
    /// Last event time per periodic traffic group (persists across
    /// windows — this is the count-up timer of §4.3). `GroupKey` is `Copy`
    /// now that destinations are interned, so timer upkeep allocates
    /// nothing.
    last_seen: FxHashMap<GroupKey, f64>,
    /// Devices whose silence has already been reported (cleared when the
    /// device produces traffic again) — a multi-day outage is one
    /// deviation, not one per window.
    absence_flagged: FxHashSet<Ipv4Addr>,
    /// Long-term transitions currently in the deviating state; only the
    /// transition *entering* that state is reported.
    long_flagged: FxHashSet<(Symbol, Symbol)>,
    /// `max_missed` of the periodic config, hoisted out of the per-event
    /// loop.
    max_missed: u32,
    /// Distinct devices with at least one periodic model, computed at
    /// construction (the outage-collapse denominator).
    n_devices_with_models: usize,
    /// Short-term threshold `μ + nσ`, fixed once the system model is.
    st_threshold: f64,
    /// Long-term critical z-value, fixed by the configuration.
    lt_crit: f64,
    /// Device address → interned display label (the name when known, the
    /// dotted address otherwise), built at construction so health
    /// attribution and ledger rendering never allocate per window.
    device_syms: FxHashMap<Ipv4Addr, Symbol>,
    /// Optional per-device health state machine (see [`HealthRegistry`]).
    health: Option<HealthRegistry>,
    /// Windows processed (the ledger sequence counter).
    windows: u64,
    scratch: MonitorScratch,
}

impl Monitor {
    /// Create a monitor from trained device models and a system model.
    pub fn new(models: BehavIoT, system: SystemModel, cfg: MonitorConfig) -> Self {
        let max_missed = models.periodic.config().max_missed;
        let devices: FxHashSet<Ipv4Addr> = models.periodic.iter().map(|m| m.device).collect();
        let st_threshold = system.short_term_threshold(cfg.short_sigma);
        let lt_crit = long_term_threshold(cfg.long_confidence);
        // Every device the monitor can say anything about: named devices
        // plus devices with periodic models, labeled like `device_label`.
        let mut device_syms: FxHashMap<Ipv4Addr, Symbol> = models
            .names
            .iter()
            .map(|(&ip, name)| (ip, Symbol::intern(name)))
            .collect();
        for &ip in &devices {
            device_syms
                .entry(ip)
                .or_insert_with(|| Symbol::intern(&ip.to_string()));
        }
        Self {
            models,
            system,
            cfg,
            last_seen: FxHashMap::default(),
            absence_flagged: FxHashSet::default(),
            long_flagged: FxHashSet::default(),
            max_missed,
            n_devices_with_models: devices.len(),
            st_threshold,
            lt_crit,
            device_syms,
            health: None,
            windows: 0,
            scratch: MonitorScratch::default(),
        }
    }

    /// The device models.
    pub fn models(&self) -> &BehavIoT {
        &self.models
    }

    /// The system model.
    pub fn system(&self) -> &SystemModel {
        &self.system
    }

    /// The monitor configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Attach a per-device health state machine: every device the monitor
    /// has models for is registered (Healthy), and each processed window is
    /// folded into it — deviations, silence, and the ingest drop budget.
    /// State transitions are recorded into the audit ledger.
    pub fn enable_health(&mut self, cfg: HealthConfig) {
        let mut registry = HealthRegistry::new(cfg);
        for &sym in self.device_syms.values() {
            registry.register(sym);
        }
        self.health = Some(registry);
    }

    /// The health registry, when [`Self::enable_health`] (or
    /// [`Self::restore_health`]) attached one.
    pub fn health(&self) -> Option<&HealthRegistry> {
        self.health.as_ref()
    }

    /// Re-attach a health registry from a durable checkpoint (the store's
    /// optional `health` artifact), continuing its timeline exactly.
    pub fn restore_health(&mut self, export: HealthExport) {
        self.health = Some(HealthRegistry::restore(export));
    }

    /// Snapshot the cross-window streaming state, sorted deterministically
    /// (timers by group key, flags by address / transition labels).
    pub fn export_state(&self) -> MonitorState {
        let mut last_seen: Vec<(GroupKey, f64)> =
            self.last_seen.iter().map(|(&k, &t)| (k, t)).collect();
        last_seen.sort_by_key(|&(k, _)| k);
        let mut absence_flagged: Vec<Ipv4Addr> = self.absence_flagged.iter().copied().collect();
        absence_flagged.sort();
        let mut long_flagged: Vec<(Symbol, Symbol)> = self.long_flagged.iter().copied().collect();
        long_flagged.sort();
        MonitorState {
            last_seen,
            absence_flagged,
            long_flagged,
            windows: self.windows,
        }
    }

    /// Rebuild a monitor from models plus previously exported streaming
    /// state. `restore(m, s, c, monitor.export_state())` continues the
    /// deviation stream exactly where `monitor` left off.
    pub fn restore(
        models: BehavIoT,
        system: SystemModel,
        cfg: MonitorConfig,
        state: MonitorState,
    ) -> Self {
        let mut monitor = Self::new(models, system, cfg);
        monitor.last_seen = state.last_seen.into_iter().collect();
        monitor.absence_flagged = state.absence_flagged.into_iter().collect();
        monitor.long_flagged = state.long_flagged.into_iter().collect();
        monitor.windows = state.windows;
        monitor
    }

    fn device_label(&self, ip: Ipv4Addr) -> String {
        self.models
            .names
            .get(&ip)
            .cloned()
            .unwrap_or_else(|| ip.to_string())
    }

    /// Process one window of flows covering `[window_start, window_end)`.
    /// Returns the significant deviations, most severe first within each
    /// kind.
    ///
    /// Steady state allocates only the returned `Vec` growth and the
    /// emitted report strings (zero on a healthy window after warm-up —
    /// `tests/monitor_alloc.rs`).
    pub fn process_window(
        &mut self,
        flows: &[FlowRecord],
        window_start: f64,
        window_end: f64,
    ) -> Vec<Deviation> {
        self.process_window_audited(flows, window_start, window_end, None, &mut NullSink)
    }

    /// [`Self::process_window`] with the audit surface attached: the same
    /// deviation stream (bit-identical — the unaudited form is this method
    /// with no ingest context and a [`NullSink`]), plus one JSONL record
    /// per deviation carrying its causal evidence, a window header with
    /// the ingest-gate counters in effect, and per-device health
    /// transitions when [`Self::enable_health`] attached a registry — all
    /// appended to `sink` (see DESIGN.md §15 for the record schema).
    ///
    /// Ledger bytes are deterministic: records derive only from
    /// policy-invariant state, in emission order, with floats in
    /// shortest-round-trip form (`tests/ledger_determinism.rs`). A healthy
    /// window with clean ingest appends nothing and allocates nothing.
    pub fn process_window_audited(
        &mut self,
        flows: &[FlowRecord],
        window_start: f64,
        window_end: f64,
        ingest: Option<WindowIngest<'_>>,
        sink: &mut dyn LedgerSink,
    ) -> Vec<Deviation> {
        let mut span = behaviot_obs::span!("monitor.window", flows = flows.len());
        let _ = self
            .models
            .infer_events_into(flows, &mut self.scratch.infer, &mut self.scratch.events);
        let mut out = Vec::new();
        self.scratch.evidence.clear();
        self.scratch.deviant.clear();
        self.scratch.seen.clear();
        if self.health.is_some() {
            for e in &self.scratch.events {
                if let Some(&sym) = self.device_syms.get(&e.device) {
                    self.scratch.seen.insert(sym);
                }
            }
        }

        // ---- periodic-event deviations --------------------------------
        // Observed events advance the per-group timer; each gap larger
        // than the threshold (relative to the best-matching period) is a
        // deviation. At window end, silent groups are checked too
        // (absence = outage/malfunction; cases 6-9 of §6.2). Both paths
        // are aggregated per device to keep reports readable. The maps are
        // fresh per window on purpose: empty `FxHashMap`s allocate nothing
        // until first insert (free on healthy windows), and their
        // iteration order — which fixes the emission order — stays
        // capacity-independent.
        // The map values carry the ledger evidence (gap/elapsed and the
        // best-matching period) alongside the score that fixes emission;
        // `periodic_metric_multi_explain` computes the identical score.
        let mut worst_gap: FxHashMap<Ipv4Addr, (f64, f64, Symbol, f64, f64)> =
            FxHashMap::default(); // device -> (score, ts, dest, gap, period)
        let mut worst_absent: FxHashMap<Ipv4Addr, (f64, Symbol, f64, f64)> = FxHashMap::default();
        for e in &self.scratch.events {
            let key: GroupKey = (e.device, e.destination, e.proto);
            let Some(model) = self.models.periodic.get(&key) else {
                continue;
            };
            // The device is talking again: a future silence is a new
            // deviation.
            self.absence_flagged.remove(&e.device);
            if let Some(prev) = self.last_seen.insert(key, e.ts) {
                let gap = e.ts - prev;
                let (score, period) =
                    periodic_metric_multi_explain(gap, &model.periods, self.max_missed);
                if score > self.cfg.periodic_threshold {
                    let entry = worst_gap
                        .entry(e.device)
                        .or_insert((0.0, e.ts, e.destination, gap, period));
                    if score > entry.0 {
                        *entry = (score, e.ts, e.destination, gap, period);
                    }
                }
            }
        }
        for model in self.models.periodic.iter() {
            let key: GroupKey = (model.device, model.destination, model.proto);
            let Some(&last) = self.last_seen.get(&key) else {
                continue;
            };
            let elapsed = window_end - last;
            let (score, period) =
                periodic_metric_multi_explain(elapsed, &model.periods, self.max_missed);
            // Only meaningful when the group has actually fallen silent
            // beyond its period, and only reported once per silence.
            if elapsed > model.period()
                && score > self.cfg.periodic_threshold
                && !self.absence_flagged.contains(&model.device)
            {
                let entry = worst_absent
                    .entry(model.device)
                    .or_insert((0.0, model.destination, elapsed, period));
                if score > entry.0 {
                    *entry = (score, model.destination, elapsed, period);
                }
            }
        }
        for device in worst_absent.keys() {
            self.absence_flagged.insert(*device);
        }
        for (device, (score, ts, dest, gap, period)) in worst_gap {
            out.push(Deviation {
                ts,
                kind: DeviationKind::PeriodicTiming,
                score,
                threshold: self.cfg.periodic_threshold,
                subject: self.device_label(device),
                detail: format!("periodic traffic to {dest} arrived off schedule"),
            });
            self.scratch.evidence.push(Evidence::Gap {
                device,
                dest,
                gap,
                period,
            });
            if let Some(&sym) = self.device_syms.get(&device) {
                self.scratch
                    .deviant
                    .entry(sym)
                    .or_insert(DeviationKind::PeriodicTiming);
            }
        }
        // A testbed-wide outage silences (nearly) every device at once:
        // collapse it into a single deviation instead of 49.
        if worst_absent.len() >= 5 && worst_absent.len() * 10 >= self.n_devices_with_models * 8 {
            let worst = worst_absent
                .values()
                .map(|(s, _, _, _)| *s)
                .fold(f64::NEG_INFINITY, f64::max);
            out.push(Deviation {
                ts: window_end,
                kind: DeviationKind::PeriodicTiming,
                score: worst,
                threshold: self.cfg.periodic_threshold,
                subject: format!("{} devices", worst_absent.len()),
                detail: "periodic traffic overdue across the testbed (network outage)".to_string(),
            });
            self.scratch.evidence.push(Evidence::Outage {
                devices: worst_absent.len(),
            });
            for device in worst_absent.keys() {
                if let Some(&sym) = self.device_syms.get(device) {
                    self.scratch
                        .deviant
                        .entry(sym)
                        .or_insert(DeviationKind::PeriodicTiming);
                }
            }
        } else {
            for (device, (score, dest, elapsed, period)) in worst_absent {
                out.push(Deviation {
                    ts: window_end,
                    kind: DeviationKind::PeriodicTiming,
                    score,
                    threshold: self.cfg.periodic_threshold,
                    subject: self.device_label(device),
                    detail: format!("periodic traffic to {dest} is overdue (possible outage)"),
                });
                self.scratch.evidence.push(Evidence::Absence {
                    device,
                    dest,
                    elapsed,
                    period,
                });
                if let Some(&sym) = self.device_syms.get(&device) {
                    self.scratch
                        .deviant
                        .entry(sym)
                        .or_insert(DeviationKind::PeriodicTiming);
                }
            }
        }

        // ---- trace assembly (symbol-native) ----------------------------
        // Single pass replicating the String pipeline exactly: segment on
        // gaps between *all* user events, keep only labels of devices the
        // system model covers (the PFSM is built over the observation
        // period's devices and cannot judge others — their events would
        // read as perpetual "new states"), drop traces left empty.
        self.scratch.user_buf.clear();
        for e in &self.scratch.events {
            let EventKind::User { activity, .. } = &e.kind else {
                continue;
            };
            let activity = *activity;
            let (label, keep) = match self.scratch.label_cache.entry((e.device, activity)) {
                std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    // Cold path: first sight of this (device, activity)
                    // pair — render and intern once.
                    let label = e
                        .pfsm_label_sym(&self.models.names)
                        .expect("user event has a label");
                    let keep = label
                        .as_str()
                        .split(':')
                        .next()
                        .and_then(Symbol::lookup)
                        .is_some_and(|d| self.system.known_device_syms().contains(&d));
                    *v.insert((label, keep))
                }
            };
            let idx = self.scratch.user_buf.len() as u32;
            self.scratch.user_buf.push((e.ts, idx, label, keep));
        }
        // Unstable sort keyed (ts, arrival index) = the stable sort of the
        // String pipeline, without its merge buffer.
        self.scratch.user_buf.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("NaN event time")
                .then_with(|| a.1.cmp(&b.1))
        });
        self.scratch.trace_labels.clear();
        self.scratch.trace_bounds.clear();
        self.scratch.trace_bounds.push(0);
        let mut last_ts = f64::NEG_INFINITY;
        let mut any_user = false;
        for &(ts, _, label, keep) in &self.scratch.user_buf {
            if any_user && ts - last_ts > self.cfg.trace_gap {
                // Close the segment; filtered-empty segments leave no row.
                let row_start = *self.scratch.trace_bounds.last().unwrap();
                if self.scratch.trace_labels.len() as u32 > row_start {
                    self.scratch.trace_bounds.push(self.scratch.trace_labels.len() as u32);
                }
            }
            if keep {
                self.scratch.trace_labels.push(label);
            }
            last_ts = ts;
            any_user = true;
        }
        let row_start = *self.scratch.trace_bounds.last().unwrap();
        if self.scratch.trace_labels.len() as u32 > row_start {
            self.scratch.trace_bounds.push(self.scratch.trace_labels.len() as u32);
        }
        let n_traces = self.scratch.trace_bounds.len() - 1;

        // ---- short-term + long-term scoring (one Viterbi per trace) ----
        // Short-term deviations are emitted in trace order here; long-term
        // results are counted per trace and emitted after, exactly like
        // the two-pass String pipeline (which re-scored every trace).
        self.scratch.longterm.reset();
        for i in 0..n_traces {
            let trace = &self.scratch.trace_labels[self.scratch.trace_bounds[i] as usize
                ..self.scratch.trace_bounds[i + 1] as usize];
            self.system
                .log
                .resolve_syms_into(trace, &mut self.scratch.resolved);
            let log10_prob = self
                .system
                .pfsm
                .score_into(&self.scratch.resolved, &mut self.scratch.score);
            let score = 1.0 - log10_prob;
            if score > self.st_threshold {
                let mut subject = String::new();
                for (j, label) in trace.iter().enumerate() {
                    if j > 0 {
                        subject.push_str(" -> ");
                    }
                    subject.push_str(label.as_str());
                }
                out.push(Deviation {
                    ts: window_start,
                    kind: DeviationKind::ShortTerm,
                    score,
                    threshold: self.st_threshold,
                    subject,
                    detail: "user-event trace is improbable under the system model".to_string(),
                });
                self.scratch.evidence.push(Evidence::Trace {
                    events: trace.len(),
                    log10_prob,
                });
                if self.health.is_some() {
                    // Every device whose label appears in the improbable
                    // trace is implicated (the `dev:activity` prefix is the
                    // registered device label; `lookup` never interns).
                    for label in trace {
                        if let Some(dev) =
                            label.as_str().split(':').next().and_then(Symbol::lookup)
                        {
                            self.scratch
                                .deviant
                                .entry(dev)
                                .or_insert(DeviationKind::ShortTerm);
                        }
                    }
                }
            }
            self.scratch.longterm.observe_path(self.scratch.score.path());
        }

        // ---- long-term system deviations --------------------------------
        let crit = self.lt_crit;
        let mut still_deviating: FxHashSet<(Symbol, Symbol)> = FxHashSet::default();
        for r in self.scratch.longterm.finalize(&self.system) {
            if r.n < self.cfg.long_min_n {
                continue;
            }
            let count_diff = (r.observed_p - r.model_p).abs() * r.n as f64;
            if r.z > crit && count_diff >= self.cfg.long_min_count_diff {
                let key = (r.from, r.to);
                still_deviating.insert(key);
                // A persistent frequency shift (e.g. a relocated camera's
                // permanently elevated motion rate) is one deviation at
                // onset, not one per window.
                if self.long_flagged.contains(&key) {
                    continue;
                }
                out.push(Deviation {
                    ts: window_start,
                    kind: DeviationKind::LongTerm,
                    score: r.z,
                    threshold: crit,
                    subject: format!("{} -> {}", r.from, r.to),
                    detail: format!(
                        "transition frequency {:.2} deviates from modeled {:.2} over {} departures",
                        r.observed_p, r.model_p, r.n
                    ),
                });
                self.scratch.evidence.push(Evidence::Transition {
                    from: r.from,
                    to: r.to,
                    observed_p: r.observed_p,
                    model_p: r.model_p,
                    n: r.n,
                });
                if self.health.is_some() {
                    for end in [r.from, r.to] {
                        if let Some(dev) = end.as_str().split(':').next().and_then(Symbol::lookup)
                        {
                            self.scratch
                                .deviant
                                .entry(dev)
                                .or_insert(DeviationKind::LongTerm);
                        }
                    }
                }
            }
        }
        self.long_flagged = still_deviating;

        // ---- health fold + ledger emission ------------------------------
        let seq = self.windows;
        self.windows += 1;
        let drop_frac = ingest.as_ref().map(WindowIngest::drop_frac).unwrap_or(0.0);
        let transitions = match &mut self.health {
            Some(h) => h.observe_window(&self.scratch.deviant, &self.scratch.seen, drop_frac),
            None => &[],
        };
        debug_assert_eq!(out.len(), self.scratch.evidence.len());
        let dirty_ingest = ingest.as_ref().is_some_and(|wi| !wi.report.is_clean());
        let mut n_records = 0u64;
        if !out.is_empty() || !transitions.is_empty() || dirty_ingest {
            let line = &mut self.scratch.line;
            line.clear();
            let _ = write!(line, "{{\"record\":\"window\",\"seq\":{seq},\"start\":");
            write_json_f64(line, window_start);
            line.push_str(",\"end\":");
            write_json_f64(line, window_end);
            let _ = write!(
                line,
                ",\"deviations\":{},\"transitions\":{}",
                out.len(),
                transitions.len()
            );
            if let Some(wi) = &ingest {
                let _ = write!(
                    line,
                    ",\"ingest\":{{\"records\":{},\"dropped\":{},\"drop_frac\":",
                    wi.records_total,
                    wi.report.dropped_records()
                );
                write_json_f64(line, drop_frac);
                let _ = write!(
                    line,
                    ",\"reordered\":{},\"clamped\":{}}}",
                    wi.report.reordered, wi.report.clamped_events
                );
            }
            line.push('}');
            sink.append(line);
            n_records += 1;
            for (d, ev) in out.iter().zip(&self.scratch.evidence) {
                line.clear();
                let _ = write!(
                    line,
                    "{{\"record\":\"deviation\",\"seq\":{seq},\"kind\":\"{}\",\"ts\":",
                    d.kind.label()
                );
                write_json_f64(line, d.ts);
                line.push_str(",\"score\":");
                write_json_f64(line, d.score);
                line.push_str(",\"threshold\":");
                write_json_f64(line, d.threshold);
                line.push_str(",\"subject\":");
                write_json_str(line, &d.subject);
                line.push_str(",\"evidence\":");
                match *ev {
                    Evidence::Gap {
                        device,
                        dest,
                        gap,
                        period,
                    } => {
                        line.push_str("{\"cause\":\"gap\",\"device\":");
                        match self.device_syms.get(&device) {
                            Some(s) => write_json_str(line, s.as_str()),
                            None => {
                                let _ = write!(line, "\"{device}\"");
                            }
                        }
                        line.push_str(",\"dest\":");
                        write_json_str(line, dest.as_str());
                        line.push_str(",\"gap\":");
                        write_json_f64(line, gap);
                        line.push_str(",\"period\":");
                        write_json_f64(line, period);
                        line.push('}');
                    }
                    Evidence::Absence {
                        device,
                        dest,
                        elapsed,
                        period,
                    } => {
                        line.push_str("{\"cause\":\"absence\",\"device\":");
                        match self.device_syms.get(&device) {
                            Some(s) => write_json_str(line, s.as_str()),
                            None => {
                                let _ = write!(line, "\"{device}\"");
                            }
                        }
                        line.push_str(",\"dest\":");
                        write_json_str(line, dest.as_str());
                        line.push_str(",\"elapsed\":");
                        write_json_f64(line, elapsed);
                        line.push_str(",\"period\":");
                        write_json_f64(line, period);
                        line.push('}');
                    }
                    Evidence::Outage { devices } => {
                        let _ = write!(line, "{{\"cause\":\"outage\",\"devices\":{devices}}}");
                    }
                    Evidence::Trace { events, log10_prob } => {
                        let _ = write!(line, "{{\"cause\":\"trace\",\"events\":{events},\"log10_prob\":");
                        write_json_f64(line, log10_prob);
                        line.push('}');
                    }
                    Evidence::Transition {
                        from,
                        to,
                        observed_p,
                        model_p,
                        n,
                    } => {
                        line.push_str("{\"cause\":\"transition\",\"from\":");
                        write_json_str(line, from.as_str());
                        line.push_str(",\"to\":");
                        write_json_str(line, to.as_str());
                        line.push_str(",\"observed_p\":");
                        write_json_f64(line, observed_p);
                        line.push_str(",\"model_p\":");
                        write_json_f64(line, model_p);
                        let _ = write!(line, ",\"n\":{n}}}");
                    }
                }
                line.push('}');
                sink.append(line);
                n_records += 1;
            }
            for t in transitions {
                line.clear();
                let _ = write!(line, "{{\"record\":\"health\",\"seq\":{seq},\"device\":");
                write_json_str(line, t.device.as_str());
                let _ = write!(
                    line,
                    ",\"from\":\"{}\",\"to\":\"{}\",\"reason\":\"{}\"}}",
                    t.from.label(),
                    t.to.label(),
                    t.reason
                );
                sink.append(line);
                n_records += 1;
            }
        }

        monitor_metrics().traces.add(n_traces as u64);
        monitor_metrics().deviations.add(out.len() as u64);
        monitor_metrics().ledger_records.add(n_records);
        span.record("traces", n_traces);
        span.record("deviations", out.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{TrainConfig, TrainingData};
    use behaviot_flows::N_FEATURES;
    use behaviot_net::Proto;
    use std::collections::HashMap as Map;

    const DEV: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);

    fn flow(dest: &str, start: f64, size: f64) -> FlowRecord {
        let mut features = [0.0; N_FEATURES];
        features[0] = size;
        features[1] = size;
        features[2] = size;
        features[11] = 2.0;
        FlowRecord {
            device: DEV,
            remote: Ipv4Addr::new(52, 0, 0, 1),
            device_port: 30000,
            remote_port: 443,
            proto: Proto::Tcp,
            domain: Some(dest.into()),
            start,
            end: start + 0.1,
            n_packets: 4,
            total_bytes: size as u64 * 4,
            features,
        }
    }

    fn monitor() -> Monitor {
        // Heartbeat every 100 s + one user activity at size 800.
        let idle: Vec<FlowRecord> = (0..600)
            .map(|i| flow("hb.cloud.com", i as f64 * 100.0, 120.0))
            .collect();
        let activity: Vec<(FlowRecord, Option<String>)> = (0..40)
            .flat_map(|i| {
                vec![
                    (
                        flow("ctl.cloud.com", i as f64 * 75.0, 800.0),
                        Some("on_off".to_string()),
                    ),
                    (flow("hb.cloud.com", 10.0 + i as f64 * 75.0, 120.0), None),
                ]
            })
            .collect();
        let refs: Vec<(&FlowRecord, Option<&str>)> =
            activity.iter().map(|(f, l)| (f, l.as_deref())).collect();
        let mut names = Map::new();
        names.insert(DEV, "plug".to_string());
        let data = TrainingData::from_flows(idle, refs, names);
        let models = BehavIoT::train(&data, &TrainConfig::default());

        // System model trained on regular "plug:on_off" traces.
        let traces: Vec<Vec<String>> = (0..30).map(|_| vec!["plug:on_off".to_string()]).collect();
        let system =
            SystemModel::from_traces(&traces, &crate::system::SystemModelConfig::default());
        Monitor::new(models, system, MonitorConfig::default())
    }

    #[test]
    fn healthy_window_is_quiet() {
        let mut m = monitor();
        let flows: Vec<FlowRecord> = (0..86)
            .map(|i| flow("hb.cloud.com", i as f64 * 100.0, 120.0))
            .collect();
        let devs = m.process_window(&flows, 0.0, 8600.0);
        assert!(devs.is_empty(), "{devs:#?}");
    }

    #[test]
    fn outage_raises_periodic_deviation() {
        let mut m = monitor();
        // Heartbeats for the first 2000 s, then silence until 10000 s.
        let flows: Vec<FlowRecord> = (0..20)
            .map(|i| flow("hb.cloud.com", i as f64 * 100.0, 120.0))
            .collect();
        let devs = m.process_window(&flows, 0.0, 10_000.0);
        let periodic: Vec<_> = devs
            .iter()
            .filter(|d| d.kind == DeviationKind::PeriodicTiming)
            .collect();
        assert!(!periodic.is_empty(), "{devs:#?}");
        assert!(periodic[0].subject == "plug");
        assert!(periodic[0].detail.contains("overdue"));
    }

    #[test]
    fn late_heartbeat_raises_timing_deviation() {
        let mut m = monitor();
        // Regular heartbeats then one arriving 8 periods late (and the
        // window closes right after, so absence isn't also flagged).
        let mut flows: Vec<FlowRecord> = (0..10)
            .map(|i| flow("hb.cloud.com", i as f64 * 100.0, 120.0))
            .collect();
        flows.push(flow("hb.cloud.com", 900.0 + 800.0, 120.0));
        let devs = m.process_window(&flows, 0.0, 1800.0);
        assert!(
            devs.iter()
                .any(|d| d.kind == DeviationKind::PeriodicTiming
                    && d.detail.contains("off schedule")),
            "{devs:#?}"
        );
    }

    #[test]
    fn misactivation_burst_raises_system_deviation() {
        let mut m = monitor();
        // 50 user events in quick succession (all within one trace-gap
        // chain would be one long trace; space them to form many traces).
        let mut flows = Vec::new();
        for i in 0..50 {
            flows.push(flow("ctl.cloud.com", i as f64 * 120.0, 800.0));
        }
        // Keep heartbeats alive so no periodic deviation fires.
        for i in 0..60 {
            flows.push(flow("hb.cloud.com", i as f64 * 100.0, 120.0));
        }
        let devs = m.process_window(&flows, 0.0, 6000.0);
        // The repeated single-event traces match training (plug:on_off),
        // so short-term stays quiet; that is exactly the case the
        // long-term metric exists for — but here frequencies match the
        // model too (every trace is the modeled trace), so nothing fires.
        // Now replay with *pairs* of on_off per trace (unseen structure).
        let mut flows2 = Vec::new();
        for i in 0..30 {
            flows2.push(flow("ctl.cloud.com", 10_000.0 + i as f64 * 120.0, 800.0));
            flows2.push(flow("ctl.cloud.com", 10_005.0 + i as f64 * 120.0, 800.0));
        }
        for i in 0..60 {
            flows2.push(flow("hb.cloud.com", 6000.0 + i as f64 * 100.0, 120.0));
        }
        let devs2 = m.process_window(&flows2, 6000.0, 14_000.0);
        assert!(
            devs2
                .iter()
                .any(|d| matches!(d.kind, DeviationKind::ShortTerm | DeviationKind::LongTerm)),
            "quiet: {devs:#?} then {devs2:#?}"
        );
    }

    #[test]
    fn timers_persist_across_windows() {
        let mut m = monitor();
        let flows: Vec<FlowRecord> = (0..20)
            .map(|i| flow("hb.cloud.com", i as f64 * 100.0, 120.0))
            .collect();
        let w1 = m.process_window(&flows, 0.0, 2000.0);
        assert!(w1.is_empty(), "{w1:#?}");
        // Next window has no heartbeats at all: the timer from window 1
        // must still trigger the absence check.
        let w2 = m.process_window(&[], 2000.0, 12_000.0);
        assert!(
            w2.iter().any(|d| d.kind == DeviationKind::PeriodicTiming),
            "{w2:#?}"
        );
    }

    #[test]
    fn kind_labels() {
        assert_eq!(DeviationKind::PeriodicTiming.label(), "periodic");
        assert_eq!(DeviationKind::ShortTerm.label(), "short-term");
        assert_eq!(DeviationKind::LongTerm.label(), "long-term");
    }
}
