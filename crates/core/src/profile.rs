//! MUD-style device profile export (§7.2 "Informing IoT profiles").
//!
//! RFC 8520 (Manufacturer Usage Description) profiles describe a device's
//! intended communication. None of the paper's 49 devices shipped one; the
//! paper proposes generating profiles from the learned behavior models.
//! This module renders a device's periodic models and user activities as a
//! MUD-flavored JSON document using a small built-in JSON emitter (no
//! external dependencies).

use crate::events::BehavIoT;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// Escape a string for JSON embedding.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the MUD-like profile of one device from its trained models.
///
/// The document lists each periodic model as an ACL entry
/// `(destination, protocol, period)` and each modeled user activity as an
/// on-demand ACL entry. An empty profile (device without models) is still
/// a valid document.
pub fn mud_profile(models: &BehavIoT, device: Ipv4Addr) -> String {
    let name = models
        .names
        .get(&device)
        .cloned()
        .unwrap_or_else(|| device.to_string());
    let mut acls: Vec<String> = Vec::new();
    let mut periodic: Vec<_> = models
        .periodic
        .iter()
        .filter(|m| m.device == device)
        .collect();
    periodic.sort_by(|a, b| {
        a.destination
            .cmp(&b.destination)
            .then(a.proto.cmp(&b.proto))
    });
    for m in periodic {
        acls.push(format!(
            "{{\"name\":\"periodic-{}\",\"protocol\":\"{}\",\"destination\":\"{}\",\"period-seconds\":{:.1},\"cadence\":\"periodic\"}}",
            esc(m.destination.as_str()),
            m.proto,
            esc(m.destination.as_str()),
            m.period()
        ));
    }
    let mut acts = models.user.activities(device);
    acts.sort();
    for a in acts {
        acls.push(format!(
            "{{\"name\":\"user-{}\",\"cadence\":\"on-demand\",\"activity\":\"{}\"}}",
            esc(a),
            esc(a)
        ));
    }
    format!(
        "{{\"ietf-mud:mud\":{{\"mud-version\":1,\"systeminfo\":\"{}\",\"cache-validity\":48,\"is-supported\":true,\"behaviot:acls\":[{}]}}}}",
        esc(&name),
        acls.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{TrainConfig, TrainingData};
    use behaviot_flows::{FlowRecord, N_FEATURES};
    use behaviot_net::Proto;
    use std::collections::HashMap;

    const DEV: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);

    fn flow(dest: &str, start: f64, size: f64) -> FlowRecord {
        let mut features = [0.0; N_FEATURES];
        features[0] = size;
        FlowRecord {
            device: DEV,
            remote: Ipv4Addr::new(52, 0, 0, 1),
            device_port: 30000,
            remote_port: 443,
            proto: Proto::Tcp,
            domain: Some(dest.into()),
            start,
            end: start + 0.1,
            n_packets: 4,
            total_bytes: size as u64 * 4,
            features,
        }
    }

    fn trained() -> BehavIoT {
        let idle: Vec<FlowRecord> = (0..400)
            .map(|i| flow("devs.tplinkcloud.com", i as f64 * 236.0, 120.0))
            .collect();
        let activity: Vec<(FlowRecord, Option<String>)> = (0..30)
            .map(|i| {
                (
                    flow("devs.tplinkcloud.com", i as f64 * 75.0, 800.0),
                    Some("on_off".into()),
                )
            })
            .collect();
        let refs: Vec<(&FlowRecord, Option<&str>)> =
            activity.iter().map(|(f, l)| (f, l.as_deref())).collect();
        let mut names = HashMap::new();
        names.insert(DEV, "TPLink Plug".to_string());
        BehavIoT::train(
            &TrainingData::from_flows(idle, refs, names),
            &TrainConfig::default(),
        )
    }

    #[test]
    fn profile_contains_models() {
        let models = trained();
        let json = mud_profile(&models, DEV);
        assert!(json.contains("\"systeminfo\":\"TPLink Plug\""));
        assert!(json.contains("devs.tplinkcloud.com"));
        assert!(json.contains("\"period-seconds\":236"));
        assert!(json.contains("\"activity\":\"on_off\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn unknown_device_valid_empty_profile() {
        let models = trained();
        let json = mud_profile(&models, Ipv4Addr::new(192, 168, 1, 99));
        assert!(json.contains("\"behaviot:acls\":[]"));
        assert!(json.contains("192.168.1.99"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
        assert_eq!(esc("plain"), "plain");
    }

    #[test]
    fn profile_is_deterministic() {
        let models = trained();
        assert_eq!(mud_profile(&models, DEV), mud_profile(&models, DEV));
    }
}
