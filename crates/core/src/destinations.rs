//! Destination analysis (§6.1): which parties each event class talks to,
//! and how events correlate with destination essentiality.

use crate::event::InferredEvent;
use behaviot_intern::{FxHashMap, FxHashSet, Symbol};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Destination party, as in Table 5. The caller supplies the mapping
/// (WHOIS-derived in the paper; the simulator catalog here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Party {
    /// Device vendor or affiliate.
    First,
    /// Cloud/CDN supporting the device function.
    Support,
    /// Anyone else.
    Third,
}

impl Party {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Party::First => "first",
            Party::Support => "support",
            Party::Third => "third",
        }
    }
}

/// Distinct-destination counts per `(event class, category, party)` — the
/// exact structure of Table 5. "Destination" means a distinct
/// `(device, domain)` pair, as the same domain contacted by two devices
/// shows up once per device in the paper's accounting.
#[derive(Debug, Clone, Default)]
pub struct PartyTable {
    counts: FxHashMap<(Symbol, Symbol, Party), usize>,
}

impl PartyTable {
    /// Count destination parties over inferred events.
    ///
    /// * `party_of(domain)` — party mapping; unknown domains are skipped.
    /// * `category_of(device)` — device category label (e.g. "Camera").
    pub fn build(
        events: &[InferredEvent],
        party_of: impl Fn(&str) -> Option<Party>,
        category_of: impl Fn(Ipv4Addr) -> String,
    ) -> Self {
        let mut seen: FxHashSet<(Symbol, Ipv4Addr, Symbol)> = FxHashSet::default();
        let mut counts: FxHashMap<(Symbol, Symbol, Party), usize> = FxHashMap::default();
        for e in events {
            let class = Symbol::intern(e.kind.class());
            if !seen.insert((class, e.device, e.destination)) {
                continue;
            }
            let Some(party) = party_of(e.destination.as_str()) else {
                continue;
            };
            let cat = Symbol::intern(&category_of(e.device));
            *counts.entry((class, cat, party)).or_insert(0) += 1;
        }
        PartyTable { counts }
    }

    /// Count for one cell.
    pub fn get(&self, class: &str, category: &str, party: Party) -> usize {
        let (Some(class), Some(category)) = (Symbol::lookup(class), Symbol::lookup(category))
        else {
            return 0;
        };
        self.counts
            .get(&(class, category, party))
            .copied()
            .unwrap_or(0)
    }

    /// Total destinations of a class per party (the "Total" rows).
    pub fn class_total(&self, class: &str, party: Party) -> usize {
        let Some(class) = Symbol::lookup(class) else {
            return 0;
        };
        self.counts
            .iter()
            .filter(|((c, _, p), _)| *c == class && *p == party)
            .map(|(_, n)| n)
            .sum()
    }

    /// Fraction of a class's destinations operated by a party (e.g. the
    /// "15.0 % of periodic destinations are third party" headline).
    pub fn party_share(&self, class: &str, party: Party) -> f64 {
        let total: usize = [Party::First, Party::Support, Party::Third]
            .iter()
            .map(|&p| self.class_total(class, p))
            .sum();
        if total == 0 {
            0.0
        } else {
            self.class_total(class, party) as f64 / total as f64
        }
    }

    /// All category labels present.
    pub fn categories(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .counts
            .keys()
            .map(|(_, c, _)| c.as_str().to_string())
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        v.sort();
        v
    }
}

/// Essentiality breakdown per event class (the §6.1 non-essential
/// destination analysis): distinct destinations whose domain is flagged
/// essential / non-essential by the provided list.
#[derive(Debug, Clone, Default)]
pub struct EssentialBreakdown {
    /// `(class, essential?) -> distinct destinations`.
    pub counts: FxHashMap<(Symbol, bool), usize>,
}

impl EssentialBreakdown {
    /// Build from events; domains absent from the essentiality map are
    /// skipped (the paper could match only a subset against IoTrim's
    /// lists).
    pub fn build(events: &[InferredEvent], essential_of: impl Fn(&str) -> Option<bool>) -> Self {
        let mut seen: FxHashSet<(Symbol, Ipv4Addr, Symbol)> = FxHashSet::default();
        let mut counts: FxHashMap<(Symbol, bool), usize> = FxHashMap::default();
        for e in events {
            let class = Symbol::intern(e.kind.class());
            if !seen.insert((class, e.device, e.destination)) {
                continue;
            }
            if let Some(ess) = essential_of(e.destination.as_str()) {
                *counts.entry((class, ess)).or_insert(0) += 1;
            }
        }
        EssentialBreakdown { counts }
    }

    /// Count for a class/flag.
    pub fn get(&self, class: &str, essential: bool) -> usize {
        let Some(class) = Symbol::lookup(class) else {
            return 0;
        };
        self.counts.get(&(class, essential)).copied().unwrap_or(0)
    }

    /// Fraction of a class's (matched) destinations that are non-essential.
    pub fn non_essential_share(&self, class: &str) -> f64 {
        let ne = self.get(class, false);
        let total = ne + self.get(class, true);
        if total == 0 {
            0.0
        } else {
            ne as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use behaviot_net::Proto;

    fn ev(dev: u8, dest: &str, kind: EventKind) -> InferredEvent {
        InferredEvent {
            ts: 0.0,
            device: Ipv4Addr::new(192, 168, 1, dev),
            destination: dest.into(),
            proto: Proto::Tcp,
            kind,
        }
    }

    fn periodic(dev: u8, dest: &str) -> InferredEvent {
        ev(
            dev,
            dest,
            EventKind::Periodic {
                destination: dest.into(),
                proto: Proto::Tcp,
            },
        )
    }

    fn user(dev: u8, dest: &str) -> InferredEvent {
        ev(
            dev,
            dest,
            EventKind::User {
                activity: "x".into(),
                confidence: 1.0,
            },
        )
    }

    fn party_map(d: &str) -> Option<Party> {
        match d {
            "vendor.com" => Some(Party::First),
            "cdn.net" => Some(Party::Support),
            "tracker.io" => Some(Party::Third),
            _ => None,
        }
    }

    #[test]
    fn party_table_counts_distinct_destinations() {
        let events = vec![
            periodic(10, "vendor.com"),
            periodic(10, "vendor.com"), // duplicate: not counted twice
            periodic(10, "tracker.io"),
            periodic(11, "vendor.com"), // other device: separate destination
            user(10, "cdn.net"),
        ];
        let t = PartyTable::build(&events, party_map, |_| "Cat".to_string());
        assert_eq!(t.get("periodic", "Cat", Party::First), 2);
        assert_eq!(t.get("periodic", "Cat", Party::Third), 1);
        assert_eq!(t.get("user", "Cat", Party::Support), 1);
        assert_eq!(t.class_total("periodic", Party::First), 2);
        assert!((t.party_share("periodic", Party::Third) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_party_skipped() {
        let events = vec![periodic(10, "mystery.example")];
        let t = PartyTable::build(&events, party_map, |_| "Cat".to_string());
        assert_eq!(t.class_total("periodic", Party::First), 0);
        assert_eq!(t.party_share("periodic", Party::First), 0.0);
    }

    #[test]
    fn essential_breakdown() {
        let ess = |d: &str| match d {
            "vendor.com" => Some(true),
            "tracker.io" => Some(false),
            _ => None,
        };
        let events = vec![
            periodic(10, "vendor.com"),
            periodic(10, "tracker.io"),
            periodic(11, "tracker.io"),
            user(10, "vendor.com"),
        ];
        let b = EssentialBreakdown::build(&events, ess);
        assert_eq!(b.get("periodic", true), 1);
        assert_eq!(b.get("periodic", false), 2);
        assert!((b.non_essential_share("periodic") - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(b.non_essential_share("user"), 0.0);
        assert_eq!(b.non_essential_share("aperiodic"), 0.0);
    }

    #[test]
    fn categories_listed() {
        let events = vec![periodic(10, "vendor.com"), periodic(20, "vendor.com")];
        let t = PartyTable::build(&events, party_map, |ip| {
            if ip.octets()[3] < 15 {
                "A".into()
            } else {
                "B".into()
            }
        });
        assert_eq!(t.categories(), vec!["A".to_string(), "B".to_string()]);
    }
}
