//! Pins the steady-state allocation contract of the per-flow monitor hot
//! path: after warm-up, [`PeriodicClassifier::classify`] performs **zero**
//! heap allocations — for timer hits, cluster hits, cluster rejections, and
//! unknown-group flows alike.
//!
//! A counting global allocator makes the contract checkable (same rig as
//! `crates/dsp/tests/alloc_steady_state.rs`; keep this file single-test —
//! the counter is process-global). The warm-up pass interns every
//! destination, inserts every timer-table key, grows the standardized-
//! features scratch, and registers the `cluster.*` metric handles; the
//! measured rounds then stream fresh (pre-constructed) flows through every
//! classify branch and fail with the exact allocation count on regression —
//! an allocating transform sneaking back in, a per-flow `Vec`, a metric
//! handle resolved per call.

use behaviot::periodic::{PeriodicClassifier, PeriodicModelSet, PeriodicTrainConfig};
use behaviot_flows::{FlowRecord, N_FEATURES};
use behaviot_intern::Symbol;
use behaviot_net::Proto;
use behaviot_par::Parallelism;
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

fn flow(device: u8, dest: &str, start: f64, size: f64) -> FlowRecord {
    let mut features = [0.0; N_FEATURES];
    features[0] = size;
    features[1] = size;
    features[2] = size;
    features[11] = 1.0;
    FlowRecord {
        device: Ipv4Addr::new(192, 168, 1, device),
        remote: Ipv4Addr::new(52, 0, 0, 1),
        device_port: 30000,
        remote_port: 443,
        proto: Proto::Tcp,
        domain: Some(Symbol::intern(dest)),
        start,
        end: start + 0.1,
        n_packets: 4,
        total_bytes: size as u64 * 4,
        features,
    }
}

fn periodic_flows(device: u8, dest: &str, period: f64, n: usize, t0: f64) -> Vec<FlowRecord> {
    (0..n)
        .map(|i| flow(device, dest, t0 + i as f64 * period, 150.0))
        .collect()
}

/// One round of monitor traffic starting at `t0`, exercising every classify
/// branch: on-timer periodic flows, an off-schedule flow with idle-like
/// features (caught by the DBSCAN stage), an off-schedule flow with
/// user-like features (rejected by it), and an unmodeled group.
fn monitor_round(t0: f64) -> Vec<FlowRecord> {
    let mut out = Vec::new();
    out.extend(periodic_flows(10, "hb.cloud.com", 100.0, 12, t0));
    out.extend(periodic_flows(11, "ctl.cloud.com", 60.0, 12, t0));
    out.push(flow(10, "hb.cloud.com", t0 + 1233.0, 150.0)); // off-timer, idle-like
    out.push(flow(10, "hb.cloud.com", t0 + 1277.0, 2000.0)); // off-timer, user-like
    out.push(flow(10, "unknown.example.com", t0 + 1300.0, 150.0)); // no model
    out.sort_by(|a, b| a.start.total_cmp(&b.start));
    out
}

#[test]
fn classify_is_allocation_free_after_warmup() {
    let mut train = periodic_flows(10, "hb.cloud.com", 100.0, 400, 0.0);
    train.extend(periodic_flows(11, "ctl.cloud.com", 60.0, 400, 0.0));
    let set = PeriodicModelSet::train_with(
        &train,
        &PeriodicTrainConfig::default(),
        Parallelism::Off,
    );
    assert_eq!(set.len(), 2, "both training groups must produce models");

    // Pre-construct every flow of every round: FlowRecord construction
    // (symbol interning on first sight) is not part of the contract.
    let rounds: Vec<Vec<FlowRecord>> =
        (0..4).map(|r| monitor_round(50_000.0 + r as f64 * 2_000.0)).collect();

    let mut clf = PeriodicClassifier::new(&set);

    // Warm-up: first round inserts timer-table keys, grows the cluster
    // scratch, and registers metric handles.
    let expected: Vec<bool> = rounds[0].iter().map(|f| clf.classify(f)).collect();
    assert!(
        expected.iter().any(|&b| b) && expected.iter().any(|&b| !b),
        "warm-up round must exercise both outcomes: {expected:?}"
    );

    // Steady state: fresh timestamps, same groups — zero allocations per
    // flow, on every branch.
    for (r, round) in rounds.iter().enumerate().skip(1) {
        for (i, f) in round.iter().enumerate() {
            let before = alloc_count();
            let got = clf.classify(f);
            let after = alloc_count();
            assert_eq!(
                after - before,
                0,
                "round {r} flow {i} ({:?}): {} allocations on the steady-state \
                 classify path (result {got})",
                f.domain_str(),
                after - before
            );
        }
    }
}
