//! Pins the steady-state allocation contract of the symbol-native monitor
//! serving path: after warm-up, [`Monitor::process_window`] performs
//! **zero** heap allocations on a healthy window — event inference over
//! reusable scratch, per-group timer upkeep, trace assembly, one Viterbi
//! per trace, and the long-term transition census included. The only
//! permitted steady-state allocations are emitted [`Deviation`] report
//! strings, and a healthy window emits none. The audited path is held to
//! the same bar: with the health registry enabled and a ledger sink
//! attached, a healthy window appends no records and allocates nothing —
//! health bookkeeping runs in pre-sized registry slots and ledger
//! rendering only engages when there is something to record.
//!
//! A counting global allocator makes the contract checkable (same rig as
//! `classify_alloc.rs`; keep this file single-test — the counter is
//! process-global). The warm-up pass interns every label, fills the
//! `(device, activity)` label cache, grows every scratch buffer to the
//! window's high-water mark, and registers the `monitor.*` metric handles;
//! the measured pass then replays the identical windows — byte-identical
//! work, so any count regression is a real allocation sneaking back into
//! the serving path. Both monitors (models trained under
//! `Parallelism::Off` and `Fixed(2)`) are held to the same bar: the
//! serving path itself is serial by contract, and training policy must not
//! change its allocation behavior.

use behaviot::{
    BehavIoT, HealthConfig, Monitor, MonitorConfig, SystemModel, SystemModelConfig, TrainConfig,
    TrainingData,
};
use behaviot_obs::{MemorySink, NullSink};
use behaviot_flows::{FlowRecord, N_FEATURES};
use behaviot_intern::Symbol;
use behaviot_par::Parallelism;
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

const N_DEV: usize = 4;
/// Routine trace shapes over device indices, all trained into the PFSM.
const PATTERNS: &[&[usize]] = &[&[0, 1], &[1, 2, 3], &[2, 0], &[3, 1]];

fn dev_ip(d: usize) -> Ipv4Addr {
    Ipv4Addr::new(192, 168, 1, 10 + d as u8)
}

fn flow(d: usize, dest: &str, start: f64, size: f64) -> FlowRecord {
    let mut features = [0.0; N_FEATURES];
    features[0] = size;
    features[1] = size;
    features[2] = size;
    features[11] = 2.0;
    FlowRecord {
        device: dev_ip(d),
        remote: Ipv4Addr::new(52, 0, 0, 1),
        device_port: 30000,
        remote_port: 443,
        proto: behaviot_net::Proto::Tcp,
        domain: Some(Symbol::intern(dest)),
        start,
        end: start + 0.1,
        n_packets: 4,
        total_bytes: size as u64 * 4,
        features,
    }
}

/// A trained monitor: per-device heartbeat groups (period 100 s), one
/// user activity per device, and a PFSM over the routine patterns.
fn monitor(par: Parallelism) -> Monitor {
    let mut idle = Vec::new();
    for d in 0..N_DEV {
        for i in 0..600 {
            idle.push(flow(d, &format!("hb{d}.cloud.com"), i as f64 * 100.0, 120.0));
        }
    }
    let mut act_flows = Vec::new();
    for d in 0..N_DEV {
        for i in 0..60 {
            act_flows.push(flow(d, "ctl.cloud.com", i as f64 * 75.0, 800.0));
        }
    }
    let names: std::collections::HashMap<Ipv4Addr, String> =
        (0..N_DEV).map(|d| (dev_ip(d), format!("dev{d}"))).collect();
    let data = TrainingData::from_flows(
        idle,
        act_flows.iter().map(|f| (f, Some("on_off"))),
        names,
    );
    let cfg = TrainConfig {
        parallelism: par,
        ..Default::default()
    };
    let models = BehavIoT::train(&data, &cfg);

    let mut traces: Vec<Vec<String>> = Vec::new();
    for _ in 0..30 {
        for pat in PATTERNS {
            traces.push(pat.iter().map(|&d| format!("dev{d}:on_off")).collect());
        }
    }
    let system = SystemModel::from_traces(&traces, &SystemModelConfig::default());
    Monitor::new(models, system, MonitorConfig::default())
}

/// Healthy serving windows: heartbeats on schedule plus routine user
/// traces matching the trained patterns. Consecutive hour-long windows —
/// the heartbeat schedule runs straight through the window boundaries, so
/// later windows are structurally identical to earlier ones (same flow
/// counts, labels, timer keys, trace shapes) with time advancing.
/// Pre-constructed so flow building (first-sight symbol interning) is
/// outside the measured region.
fn healthy_windows() -> Vec<(Vec<FlowRecord>, f64, f64)> {
    let mut out = Vec::new();
    for w in 0..6 {
        let t0 = w as f64 * 3600.0;
        let mut flows = Vec::new();
        for d in 0..N_DEV {
            for i in 0..36 {
                flows.push(flow(d, &format!("hb{d}.cloud.com"), t0 + i as f64 * 100.0, 120.0));
            }
        }
        let mut t = t0 + 30.0;
        for _ in 0..3 {
            for pat in PATTERNS {
                for (j, &d) in pat.iter().enumerate() {
                    flows.push(flow(d, "ctl.cloud.com", t + j as f64 * 5.0, 800.0));
                }
                t += 120.0;
            }
        }
        flows.sort_by(|a, b| a.start.total_cmp(&b.start));
        out.push((flows, t0, t0 + 3600.0));
    }
    out
}

#[test]
fn process_window_is_allocation_free_after_warmup() {
    let windows = healthy_windows();
    for par in [Parallelism::Off, Parallelism::Fixed(2)] {
        let mut m = monitor(par);

        // Warm-up: the first three windows fill the label cache, grow
        // every scratch buffer to the stream's high-water mark, insert
        // every timer key, and resolve the monitor.* metric handles.
        let (warm, steady) = windows.split_at(3);
        for (flows, s, e) in warm {
            let devs = m.process_window(flows, *s, *e);
            assert!(devs.is_empty(), "warm-up must be healthy ({par:?}): {devs:#?}");
        }

        // Steady state: the remaining windows repeat the warm-up windows'
        // structure exactly (time advancing) — and must not allocate at
        // all.
        for (w, (flows, s, e)) in steady.iter().enumerate() {
            let before = alloc_count();
            let devs = m.process_window(flows, *s, *e);
            let after = alloc_count();
            assert!(devs.is_empty(), "steady state must stay healthy: {devs:#?}");
            assert_eq!(
                after - before,
                0,
                "window {w} ({par:?}): {} allocations on the steady-state \
                 serving path ({} flows)",
                after - before,
                flows.len()
            );
        }

        // Audited path, same bar: health registry enabled, ledger sink
        // attached. A healthy window appends nothing, so even a capturing
        // MemorySink sees no writes — and the whole audited window must
        // still be allocation-free. (The first audited window warms the
        // registry's transition scratch; it is part of warm-up.)
        let mut m = monitor(par);
        m.enable_health(HealthConfig::default());
        let mut sink = MemorySink::new();
        for (flows, s, e) in warm {
            let devs = m.process_window_audited(flows, *s, *e, None, &mut sink);
            assert!(devs.is_empty(), "audited warm-up must be healthy: {devs:#?}");
        }
        assert!(
            sink.is_empty(),
            "healthy windows appended ledger records: {:?}",
            sink.as_str()
        );
        for (w, (flows, s, e)) in steady.iter().enumerate() {
            let before = alloc_count();
            let devs = m.process_window_audited(flows, *s, *e, None, &mut NullSink);
            let after = alloc_count();
            assert!(devs.is_empty(), "audited steady state must stay healthy");
            assert_eq!(
                after - before,
                0,
                "window {w} ({par:?}): {} allocations on the audited \
                 steady-state path ({} flows)",
                after - before,
                flows.len()
            );
        }
    }
}
