//! DBSCAN clustering substrate for BehavIoT.
//!
//! §4.1 of the paper labels periodic traffic in two steps: a count-up timer
//! for flows whose period matches cleanly, then **DBSCAN** over flow
//! features for the remainder, with clusters trained on idle traffic. DBSCAN
//! is used because the number of clusters is unknown a priori.
//!
//! We provide:
//! * [`Standardizer`] — per-feature z-score normalization fitted on training
//!   data (distances in DBSCAN are meaningless across raw feature scales),
//! * [`Dbscan`] — the classic density-based clustering algorithm
//!   (Ester et al., KDD'96),
//! * [`DbscanModel`] — a fitted model that can assign *new* points to the
//!   trained clusters (a point joins a cluster when it lies within `eps` of
//!   one of that cluster's core points), which is exactly how the pipeline
//!   classifies future unlabeled flows as periodic events.

#![warn(missing_docs)]

/// Label assigned to points that belong to no cluster.
pub const NOISE: i32 = -1;

/// Per-feature standardization (zero mean, unit variance) fitted on a
/// training matrix.
#[derive(Debug, Clone)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit on row-major data (`points[i]` is a feature vector). All rows
    /// must share a dimension. Returns `None` for empty input.
    pub fn fit(points: &[Vec<f64>]) -> Option<Self> {
        let dim = points.first()?.len();
        let n = points.len() as f64;
        let mut means = vec![0.0; dim];
        for p in points {
            assert_eq!(p.len(), dim, "inconsistent dimensions");
            for (m, &x) in means.iter_mut().zip(p) {
                *m += x;
            }
        }
        for m in means.iter_mut() {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for p in points {
            for ((s, &m), &x) in stds.iter_mut().zip(&means).zip(p) {
                *s += (x - m) * (x - m);
            }
        }
        for s in stds.iter_mut() {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave centered values at zero
            }
        }
        Some(Self { means, stds })
    }

    /// Transform one point.
    pub fn transform(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.means.len(), "dimension mismatch");
        point
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect()
    }

    /// Transform a batch.
    pub fn transform_all(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        points.iter().map(|p| self.transform(p)).collect()
    }
}

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct Dbscan {
    /// Neighborhood radius (Euclidean, on standardized features).
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Dbscan {
    /// Run DBSCAN, returning per-point labels (`NOISE` or a cluster id
    /// starting at 0) and the fitted model for classifying new points.
    ///
    /// Complexity is O(n²) distance computations; training sets in the
    /// pipeline are per-device and comfortably small (≤ tens of thousands).
    pub fn fit(&self, points: &[Vec<f64>]) -> (Vec<i32>, DbscanModel) {
        let n = points.len();
        let eps_sq = self.eps * self.eps;
        let mut labels = vec![NOISE; n];
        let mut visited = vec![false; n];
        let mut cluster = 0i32;

        let neighbors = |i: usize| -> Vec<usize> {
            (0..n)
                .filter(|&j| dist_sq(&points[i], &points[j]) <= eps_sq)
                .collect()
        };

        for i in 0..n {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            let nbrs = neighbors(i);
            if nbrs.len() < self.min_pts {
                continue; // stays noise unless later absorbed as a border point
            }
            // Start a new cluster; expand via BFS over density-reachable pts.
            labels[i] = cluster;
            let mut queue: Vec<usize> = nbrs;
            let mut qi = 0;
            while qi < queue.len() {
                let j = queue[qi];
                qi += 1;
                if labels[j] == NOISE {
                    labels[j] = cluster; // border point
                }
                if visited[j] {
                    continue;
                }
                visited[j] = true;
                labels[j] = cluster;
                let jn = neighbors(j);
                if jn.len() >= self.min_pts {
                    queue.extend(jn);
                }
            }
            cluster += 1;
        }

        // Collect core points for the predictive model.
        let mut core_points = Vec::new();
        let mut core_labels = Vec::new();
        for i in 0..n {
            if labels[i] == NOISE {
                continue;
            }
            if neighbors(i).len() >= self.min_pts {
                core_points.push(points[i].clone());
                core_labels.push(labels[i]);
            }
        }
        (
            labels,
            DbscanModel {
                eps: self.eps,
                core_points,
                core_labels,
                n_clusters: cluster as usize,
            },
        )
    }
}

/// A fitted DBSCAN model: cluster assignment for unseen points.
#[derive(Debug, Clone)]
pub struct DbscanModel {
    eps: f64,
    core_points: Vec<Vec<f64>>,
    core_labels: Vec<i32>,
    n_clusters: usize,
}

impl DbscanModel {
    /// Number of clusters discovered during fitting.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Assign a new point: the cluster of the nearest core point within
    /// `eps`, else `None` (noise).
    pub fn predict(&self, point: &[f64]) -> Option<i32> {
        let eps_sq = self.eps * self.eps;
        let mut best: Option<(f64, i32)> = None;
        for (cp, &lab) in self.core_points.iter().zip(&self.core_labels) {
            let d = dist_sq(cp, point);
            if d <= eps_sq && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, lab));
            }
        }
        best.map(|(_, lab)| lab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n)
            .map(|_| vec![cx + spread * next(), cy + spread * next()])
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob(0.0, 0.0, 50, 0.5, 3);
        pts.extend(blob(10.0, 10.0, 50, 0.5, 7));
        let (labels, model) = Dbscan {
            eps: 1.0,
            min_pts: 4,
        }
        .fit(&pts);
        assert_eq!(model.n_clusters(), 2);
        // Points in the same blob share a label.
        assert!(labels[..50].iter().all(|&l| l == labels[0] && l != NOISE));
        assert!(labels[50..].iter().all(|&l| l == labels[50] && l != NOISE));
        assert_ne!(labels[0], labels[50]);
    }

    #[test]
    fn outlier_is_noise() {
        let mut pts = blob(0.0, 0.0, 40, 0.4, 11);
        pts.push(vec![100.0, -50.0]);
        let (labels, _) = Dbscan {
            eps: 1.0,
            min_pts: 4,
        }
        .fit(&pts);
        assert_eq!(*labels.last().unwrap(), NOISE);
    }

    #[test]
    fn predict_assigns_near_and_rejects_far() {
        let pts = blob(5.0, 5.0, 60, 0.5, 13);
        let (_, model) = Dbscan {
            eps: 1.0,
            min_pts: 4,
        }
        .fit(&pts);
        assert!(model.predict(&[5.1, 4.9]).is_some());
        assert!(model.predict(&[50.0, 50.0]).is_none());
    }

    #[test]
    fn min_pts_larger_than_data_all_noise() {
        let pts = blob(0.0, 0.0, 5, 0.2, 17);
        let (labels, model) = Dbscan {
            eps: 0.5,
            min_pts: 10,
        }
        .fit(&pts);
        assert!(labels.iter().all(|&l| l == NOISE));
        assert_eq!(model.n_clusters(), 0);
        assert!(model.predict(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn chain_is_density_connected() {
        // A line of points spaced 0.5 apart with eps 0.6 forms one cluster.
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.5, 0.0]).collect();
        let (labels, model) = Dbscan {
            eps: 0.6,
            min_pts: 3,
        }
        .fit(&pts);
        assert_eq!(model.n_clusters(), 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_input() {
        let (labels, model) = Dbscan {
            eps: 1.0,
            min_pts: 3,
        }
        .fit(&[]);
        assert!(labels.is_empty());
        assert_eq!(model.n_clusters(), 0);
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let pts = vec![vec![10.0, 100.0], vec![20.0, 200.0], vec![30.0, 300.0]];
        let s = Standardizer::fit(&pts).unwrap();
        let t = s.transform_all(&pts);
        for d in 0..2 {
            let col: Vec<f64> = t.iter().map(|p| p[d]).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardizer_constant_feature() {
        let pts = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let s = Standardizer::fit(&pts).unwrap();
        let t = s.transform(&[5.0, 2.0]);
        assert_eq!(t[0], 0.0);
    }

    #[test]
    fn standardizer_empty() {
        assert!(Standardizer::fit(&[]).is_none());
    }

    #[test]
    fn standardization_makes_scales_comparable() {
        // Same structure, but one feature is 1000x the scale of the other;
        // without standardization DBSCAN on eps=1 sees one smear.
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![i as f64 * 0.01, 0.0]);
            pts.push(vec![i as f64 * 0.01, 5000.0]);
        }
        let s = Standardizer::fit(&pts).unwrap();
        let t = s.transform_all(&pts);
        let (_, model) = Dbscan {
            eps: 0.5,
            min_pts: 3,
        }
        .fit(&t);
        assert_eq!(model.n_clusters(), 2);
    }
}
