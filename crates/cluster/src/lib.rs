//! DBSCAN clustering substrate for BehavIoT.
//!
//! §4.1 of the paper labels periodic traffic in two steps: a count-up timer
//! for flows whose period matches cleanly, then **DBSCAN** over flow
//! features for the remainder, with clusters trained on idle traffic. DBSCAN
//! is used because the number of clusters is unknown a priori.
//!
//! We provide:
//! * [`FeatureMatrix`] — the flat row-major point container every API here
//!   operates on (one contiguous `Vec<f64>` plus a dimension, so a training
//!   set is a single allocation instead of n boxed rows),
//! * [`Standardizer`] — per-feature z-score normalization fitted on training
//!   data (distances in DBSCAN are meaningless across raw feature scales),
//! * [`Dbscan`] — the classic density-based clustering algorithm
//!   (Ester et al., KDD'96), accelerated by a uniform grid index with
//!   eps-sized bins so neighbor queries touch candidate cells instead of
//!   scanning all n points, and computing each point's neighbor list exactly
//!   once (CSR adjacency) instead of up to three times,
//! * [`DbscanModel`] — a fitted model that can assign *new* points to the
//!   trained clusters (a point joins a cluster when it lies within `eps` of
//!   one of that cluster's core points), which is exactly how the pipeline
//!   classifies future unlabeled flows as periodic events. Core points are
//!   stored label-partitioned in one flat matrix; distance accumulation
//!   early-exits against the best bound, and the boolean membership check
//!   ([`DbscanModel::matches`]) returns at the first in-eps core point.
//!
//! Every rewrite here is pinned byte-identical to the pre-flat
//! implementation (vendored in `tests/parity.rs` and
//! `crates/bench/benches/cluster.rs`): neighbor *sets* are unchanged by the
//! grid (bin width = eps, so any pair within eps differs by at most one cell
//! per binned dimension), neighbor lists are sorted ascending to reproduce
//! the old full-scan enumeration order, and tie-breaks in
//! [`DbscanModel::predict`] resolve by original training index exactly as
//! the old first-match-wins scan did.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Label assigned to points that belong to no cluster.
pub const NOISE: i32 = -1;

// ---------------------------------------------------------------------------
// FeatureMatrix
// ---------------------------------------------------------------------------

/// A flat row-major matrix of feature vectors: `n_rows` points of dimension
/// `dim` stored in one contiguous `Vec<f64>`.
///
/// This is the SoA-friendly currency of the clustering layer: training a
/// group allocates one buffer instead of one `Vec` per flow, rows are
/// cache-adjacent for the distance kernels, and scratch reuse (via
/// [`Self::clear`]) makes repeated fits allocation-free once capacity has
/// grown.
#[derive(Debug, Clone, Default)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    dim: usize,
    n_rows: usize,
}

impl FeatureMatrix {
    /// Empty matrix of the given dimension.
    pub fn new(dim: usize) -> Self {
        Self {
            data: Vec::new(),
            dim,
            n_rows: 0,
        }
    }

    /// Empty matrix with capacity for `rows` rows of dimension `dim`.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        Self {
            data: Vec::with_capacity(dim * rows),
            dim,
            n_rows: 0,
        }
    }

    /// Build from row vectors. All rows must share a dimension (the first
    /// row's length; empty input yields a 0-dimensional empty matrix).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map_or(0, |r| r.len());
        let mut m = Self::with_capacity(dim, rows.len());
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Append one row.
    ///
    /// # Panics
    /// When `row.len() != self.dim()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "inconsistent dimensions");
        self.data.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Number of rows (points).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Is the matrix empty (no rows)?
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterate over rows.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.n_rows).map(move |i| self.row(i))
    }

    /// The backing flat slice (`n_rows * dim` values, row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Drop all rows, keep capacity and dimension.
    pub fn clear(&mut self) {
        self.data.clear();
        self.n_rows = 0;
    }

    /// Drop all rows and change the dimension, keeping capacity.
    pub fn reset(&mut self, dim: usize) {
        self.data.clear();
        self.dim = dim;
        self.n_rows = 0;
    }
}

// ---------------------------------------------------------------------------
// Standardizer
// ---------------------------------------------------------------------------

/// Per-feature standardization (zero mean, unit variance) fitted on a
/// training matrix.
#[derive(Debug, Clone)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit on a flat matrix. Returns `None` for an empty matrix.
    ///
    /// Accumulation order (row-major, per-dimension accumulators) is
    /// identical to the historical `&[Vec<f64>]` implementation, so fitted
    /// parameters are bitwise unchanged.
    pub fn fit_matrix(m: &FeatureMatrix) -> Option<Self> {
        if m.is_empty() {
            return None;
        }
        let dim = m.dim();
        let n = m.n_rows() as f64;
        let mut means = vec![0.0; dim];
        for row in m.iter() {
            for (acc, &x) in means.iter_mut().zip(row) {
                *acc += x;
            }
        }
        for acc in means.iter_mut() {
            *acc /= n;
        }
        let mut stds = vec![0.0; dim];
        for row in m.iter() {
            for ((s, &mean), &x) in stds.iter_mut().zip(&means).zip(row) {
                *s += (x - mean) * (x - mean);
            }
        }
        for s in stds.iter_mut() {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave centered values at zero
            }
        }
        Some(Self { means, stds })
    }

    /// Fit on row-major data (`points[i]` is a feature vector). All rows
    /// must share a dimension. Returns `None` for empty input.
    pub fn fit(points: &[Vec<f64>]) -> Option<Self> {
        Self::fit_matrix(&FeatureMatrix::from_rows(points))
    }

    /// Fitted dimension.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// The fitted parameters as `(means, stds)` slices — the serialization
    /// surface used by the model store.
    pub fn params(&self) -> (&[f64], &[f64]) {
        (&self.means, &self.stds)
    }

    /// Rebuild a standardizer from previously exported parameters.
    ///
    /// Validates the invariants [`Self::fit_matrix`] guarantees: equal
    /// lengths, finite means, and finite strictly-positive stds. Returns a
    /// static reason on violation (loaders turn it into their own error
    /// type) — never panics.
    pub fn from_params(means: Vec<f64>, stds: Vec<f64>) -> Result<Self, &'static str> {
        if means.len() != stds.len() {
            return Err("means/stds length mismatch");
        }
        if means.iter().any(|m| !m.is_finite()) {
            return Err("non-finite mean");
        }
        if stds.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err("non-positive or non-finite std");
        }
        Ok(Self { means, stds })
    }

    /// Transform one point into a caller-provided scratch buffer (cleared
    /// first). Allocation-free once the buffer's capacity has grown — this
    /// is the per-flow monitor-path API.
    pub fn transform_into(&self, point: &[f64], out: &mut Vec<f64>) {
        assert_eq!(point.len(), self.means.len(), "dimension mismatch");
        out.clear();
        out.extend(
            point
                .iter()
                .zip(self.means.iter().zip(&self.stds))
                .map(|(&x, (&m, &s))| (x - m) / s),
        );
    }

    /// Standardize every row of a matrix in place.
    pub fn transform_matrix(&self, m: &mut FeatureMatrix) {
        assert_eq!(m.dim(), self.means.len(), "dimension mismatch");
        for i in 0..m.n_rows() {
            for ((x, &mean), &s) in m
                .row_mut(i)
                .iter_mut()
                .zip(&self.means)
                .zip(&self.stds)
            {
                *x = (*x - mean) / s;
            }
        }
    }

    /// Transform one point.
    #[deprecated(
        since = "0.1.0",
        note = "allocates a Vec per point; use `transform_into` (scratch) on hot paths"
    )]
    pub fn transform(&self, point: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.means.len());
        self.transform_into(point, &mut out);
        out
    }

    /// Transform a batch.
    #[deprecated(
        since = "0.1.0",
        note = "allocates a Vec per row; use `transform_matrix` over a `FeatureMatrix`"
    )]
    pub fn transform_all(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        points
            .iter()
            .map(|p| {
                let mut out = Vec::with_capacity(self.means.len());
                self.transform_into(p, &mut out);
                out
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Distance kernels
// ---------------------------------------------------------------------------

/// Is the squared Euclidean distance between `a` and `b` at most `eps_sq`?
/// Early-exits as soon as the running sum exceeds `eps_sq` — the verdict is
/// identical to the full sum because the summands are non-negative (a
/// partial sum above the bound can only grow), and a NaN summand fails both
/// the partial and the full comparison.
#[inline]
fn within_eps_sq(a: &[f64], b: &[f64], eps_sq: f64) -> bool {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
        // Negated on purpose: a NaN partial sum must bail out too, and
        // `acc > eps_sq` is false for NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(acc <= eps_sq) {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Uniform grid index
// ---------------------------------------------------------------------------

/// Cheap multiply-xor hasher for grid-cell keys. The cell map is never
/// iterated (all traversal goes through sorted neighbor lists), so hasher
/// choice cannot affect labels — this exists purely because SipHash is
/// measurable on the per-point candidate lookups.
#[derive(Default)]
struct CellHasher(u64);

impl Hasher for CellHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_i64(&mut self, i: i64) {
        self.0 = (self.0 ^ i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23);
    }
}

const GRID_DIMS: usize = 3;

/// Uniform grid over (at most) the first [`GRID_DIMS`] feature dimensions,
/// with bin width `eps`.
///
/// Correctness: if `||a - b|| <= eps` then `|a[d] - b[d]| <= eps` for every
/// dimension, so the cell coordinates of `a` and `b` differ by at most one
/// per binned dimension — every true neighbor of a point lives in one of
/// the 3^g adjacent cells, and the exact distance test filters the rest.
/// Non-finite coordinates degrade gracefully: float→int casts saturate, so
/// affected points collapse into shared edge cells (a superset of
/// candidates, never a miss), and the distance test rejects them exactly as
/// the full scan did.
struct GridIndex {
    cells: HashMap<[i64; GRID_DIMS], Vec<u32>, BuildHasherDefault<CellHasher>>,
    mins: [f64; GRID_DIMS],
    inv_eps: f64,
    gdims: usize,
}

impl GridIndex {
    fn build(m: &FeatureMatrix, eps: f64) -> Self {
        // Degenerate eps (zero, negative, non-finite) cannot define a bin
        // width: bin nothing, i.e. every point lands in one cell and
        // neighbor queries scan all points — exactly the old full scan.
        let gdims = if eps.is_finite() && eps > 0.0 {
            m.dim().min(GRID_DIMS)
        } else {
            0
        };
        let mut mins = [0.0; GRID_DIMS];
        for (d, slot) in mins.iter_mut().enumerate().take(gdims) {
            *slot = m.iter().map(|r| r[d]).fold(f64::INFINITY, f64::min);
        }
        let mut idx = Self {
            cells: HashMap::default(),
            mins,
            inv_eps: if gdims > 0 { 1.0 / eps } else { 0.0 },
            gdims,
        };
        for i in 0..m.n_rows() {
            let key = idx.cell_of(m.row(i));
            idx.cells.entry(key).or_default().push(i as u32);
        }
        idx
    }

    fn cell_of(&self, p: &[f64]) -> [i64; GRID_DIMS] {
        let mut key = [0i64; GRID_DIMS];
        for d in 0..self.gdims {
            // Saturating cast: non-finite coordinates pin to the i64 edges
            // instead of panicking; see the type-level comment.
            key[d] = ((p[d] - self.mins[d]) * self.inv_eps).floor() as i64;
        }
        key
    }

    /// Visit every point index in the cells adjacent to `key` (including
    /// `key` itself). Visit order is arbitrary; callers that need an order
    /// must sort what they collect.
    fn for_each_candidate(&self, key: [i64; GRID_DIMS], mut f: impl FnMut(u32)) {
        let span = |d: usize| -> [i64; 2] {
            if d < self.gdims {
                [key[d].saturating_sub(1), key[d].saturating_add(1)]
            } else {
                [0, 0]
            }
        };
        let [x0, x1] = span(0);
        let [y0, y1] = span(1);
        let [z0, z1] = span(2);
        for x in x0..=x1 {
            for y in y0..=y1 {
                for z in z0..=z1 {
                    if let Some(pts) = self.cells.get(&[x, y, z]) {
                        for &j in pts {
                            f(j);
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DBSCAN
// ---------------------------------------------------------------------------

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct Dbscan {
    /// Neighborhood radius (Euclidean, on standardized features).
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Dbscan {
    /// Run DBSCAN over a flat matrix, returning per-point labels (`NOISE` or
    /// a cluster id starting at 0) and the fitted model for classifying new
    /// points.
    ///
    /// Each point's eps-neighborhood is computed exactly once (into a CSR
    /// adjacency shared by cluster expansion, core-point detection, and
    /// model extraction) using the grid index, so the historical O(n²·3)
    /// distance work drops to O(candidates) per point. Labels are
    /// byte-identical to the pre-index implementation: neighbor lists are
    /// sorted ascending (the old full-scan order), and BFS expansion,
    /// border-point absorption, and cluster numbering are order-preserved.
    pub fn fit_matrix(&self, m: &FeatureMatrix) -> (Vec<i32>, DbscanModel) {
        let n = m.n_rows();
        let dim = m.dim();
        assert!(n <= u32::MAX as usize, "too many points for u32 indices");
        let eps_sq = self.eps * self.eps;

        // Pass 1: neighbor lists, exactly once per point, CSR layout.
        let grid = GridIndex::build(m, self.eps);
        let mut offsets: Vec<usize> = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut adj: Vec<u32> = Vec::new();
        for i in 0..n {
            let pi = m.row(i);
            let start = adj.len();
            grid.for_each_candidate(grid.cell_of(pi), |j| {
                if within_eps_sq(pi, m.row(j as usize), eps_sq) {
                    adj.push(j);
                }
            });
            // Ascending index order == the old `(0..n).filter(...)` scan.
            adj[start..].sort_unstable();
            offsets.push(adj.len());
        }
        let nbrs = |i: usize| -> &[u32] { &adj[offsets[i]..offsets[i + 1]] };

        // Pass 2: the classic label/expand loop, reading the CSR adjacency
        // with reusable visited/frontier buffers.
        let mut labels = vec![NOISE; n];
        let mut visited = vec![false; n];
        let mut frontier: Vec<u32> = Vec::new();
        let mut cluster = 0i32;
        for i in 0..n {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            let seed = nbrs(i);
            if seed.len() < self.min_pts {
                continue; // stays noise unless later absorbed as a border point
            }
            // Start a new cluster; expand via BFS over density-reachable pts.
            labels[i] = cluster;
            frontier.clear();
            frontier.extend_from_slice(seed);
            let mut qi = 0;
            while qi < frontier.len() {
                let j = frontier[qi] as usize;
                qi += 1;
                if labels[j] == NOISE {
                    labels[j] = cluster; // border point
                }
                if visited[j] {
                    continue;
                }
                visited[j] = true;
                labels[j] = cluster;
                let jn = nbrs(j);
                if jn.len() >= self.min_pts {
                    frontier.extend_from_slice(jn);
                }
            }
            cluster += 1;
        }

        // Pass 3: core points into a label-partitioned flat matrix (stable
        // within each label, so original-index order is preserved per
        // partition). Degrees come from the CSR offsets — no recomputation.
        let n_clusters = cluster as usize;
        let mut counts = vec![0usize; n_clusters];
        let is_core =
            |i: usize| labels[i] != NOISE && offsets[i + 1] - offsets[i] >= self.min_pts;
        for i in 0..n {
            if is_core(i) {
                counts[labels[i] as usize] += 1;
            }
        }
        let mut label_offsets = vec![0usize; n_clusters + 1];
        for (k, &c) in counts.iter().enumerate() {
            label_offsets[k + 1] = label_offsets[k] + c;
        }
        let total_cores = label_offsets[n_clusters];
        let mut cores = vec![0.0; total_cores * dim];
        let mut core_orig = vec![0u32; total_cores];
        let mut cursor = label_offsets.clone();
        for i in 0..n {
            if is_core(i) {
                let slot = cursor[labels[i] as usize];
                cursor[labels[i] as usize] += 1;
                cores[slot * dim..(slot + 1) * dim].copy_from_slice(m.row(i));
                core_orig[slot] = i as u32;
            }
        }
        (
            labels,
            DbscanModel {
                eps: self.eps,
                dim,
                cores,
                core_orig,
                label_offsets,
            },
        )
    }

    /// Run DBSCAN over row vectors (convenience wrapper over
    /// [`Self::fit_matrix`]). All rows must share a dimension.
    pub fn fit(&self, points: &[Vec<f64>]) -> (Vec<i32>, DbscanModel) {
        self.fit_matrix(&FeatureMatrix::from_rows(points))
    }
}

// ---------------------------------------------------------------------------
// DbscanModel
// ---------------------------------------------------------------------------

/// A fitted DBSCAN model: cluster assignment for unseen points.
///
/// Core points live in one flat row-major matrix partitioned by label
/// (`label_offsets[k]..label_offsets[k+1]` are cluster `k`'s rows, in
/// original training order); `core_orig` carries each row's index in the
/// training set so distance ties resolve exactly as the historical
/// first-match-wins full scan did.
#[derive(Debug, Clone)]
pub struct DbscanModel {
    eps: f64,
    dim: usize,
    cores: Vec<f64>,
    core_orig: Vec<u32>,
    label_offsets: Vec<usize>,
}

impl DbscanModel {
    /// Number of clusters discovered during fitting.
    pub fn n_clusters(&self) -> usize {
        self.label_offsets.len() - 1
    }

    /// Total number of stored core points.
    pub fn n_core_points(&self) -> usize {
        self.core_orig.len()
    }

    fn core_row(&self, r: usize) -> &[f64] {
        &self.cores[r * self.dim..(r + 1) * self.dim]
    }

    /// Assign a new point: the cluster of the nearest core point within
    /// `eps`, else `None` (noise).
    ///
    /// Per-candidate distance accumulation early-exits once the running sum
    /// exceeds the current best (strictly — equal-distance candidates run to
    /// completion so the original-index tie-break can apply).
    pub fn predict(&self, point: &[f64]) -> Option<i32> {
        let eps_sq = self.eps * self.eps;
        // (distance, original training index, label) of the best hit.
        let mut best: Option<(f64, u32, i32)> = None;
        for lab in 0..self.n_clusters() {
            for r in self.label_offsets[lab]..self.label_offsets[lab + 1] {
                let bound = best.map_or(eps_sq, |(bd, _, _)| bd);
                let mut acc = 0.0;
                let mut pruned = false;
                for (x, y) in self.core_row(r).iter().zip(point) {
                    let d = x - y;
                    acc += d * d;
                    if acc > bound {
                        pruned = true;
                        break;
                    }
                }
                // Negated on purpose: a NaN distance must be rejected, and
                // `acc > eps_sq` is false for NaN.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if pruned || !(acc <= eps_sq) {
                    continue;
                }
                let orig = self.core_orig[r];
                let better = match best {
                    None => true,
                    Some((bd, borig, _)) => acc < bd || (acc == bd && orig < borig),
                };
                if better {
                    best = Some((acc, orig, lab as i32));
                }
            }
        }
        best.map(|(_, _, lab)| lab)
    }

    /// Neighborhood radius the model was fitted with.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Feature dimension of the core points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The flat label-partitioned core-point matrix (`n_core_points() * dim`
    /// values, row-major).
    pub fn cores(&self) -> &[f64] {
        &self.cores
    }

    /// Original training index of each stored core row (the predict
    /// tie-break order).
    pub fn core_orig(&self) -> &[u32] {
        &self.core_orig
    }

    /// Label partition offsets: cluster `k` owns core rows
    /// `label_offsets()[k]..label_offsets()[k+1]`.
    pub fn label_offsets(&self) -> &[usize] {
        &self.label_offsets
    }

    /// Rebuild a model from previously exported parts, validating every
    /// structural invariant [`Dbscan::fit_matrix`] guarantees so a
    /// corrupted snapshot can never produce a model whose `predict` indexes
    /// out of bounds. Never panics.
    pub fn from_parts(
        eps: f64,
        dim: usize,
        cores: Vec<f64>,
        core_orig: Vec<u32>,
        label_offsets: Vec<usize>,
    ) -> Result<Self, &'static str> {
        if !eps.is_finite() || eps < 0.0 {
            return Err("bad eps");
        }
        if cores.len() != core_orig.len() * dim {
            return Err("cores/core_orig size mismatch");
        }
        if cores.iter().any(|c| !c.is_finite()) {
            return Err("non-finite core coordinate");
        }
        if label_offsets.is_empty() || label_offsets[0] != 0 {
            return Err("label offsets must start at 0");
        }
        if label_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("label offsets must be non-decreasing");
        }
        if *label_offsets.last().expect("non-empty checked above") != core_orig.len() {
            return Err("label offsets must end at the core count");
        }
        Ok(Self {
            eps,
            dim,
            cores,
            core_orig,
            label_offsets,
        })
    }

    /// Does the point lie within `eps` of *any* core point? Equivalent to
    /// `self.predict(point).is_some()` but returns at the first hit — the
    /// per-flow monitor-path check, allocation-free.
    pub fn matches(&self, point: &[f64]) -> bool {
        let eps_sq = self.eps * self.eps;
        (0..self.n_core_points()).any(|r| within_eps_sq(self.core_row(r), point, eps_sq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n)
            .map(|_| vec![cx + spread * next(), cy + spread * next()])
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob(0.0, 0.0, 50, 0.5, 3);
        pts.extend(blob(10.0, 10.0, 50, 0.5, 7));
        let (labels, model) = Dbscan {
            eps: 1.0,
            min_pts: 4,
        }
        .fit(&pts);
        assert_eq!(model.n_clusters(), 2);
        // Points in the same blob share a label.
        assert!(labels[..50].iter().all(|&l| l == labels[0] && l != NOISE));
        assert!(labels[50..].iter().all(|&l| l == labels[50] && l != NOISE));
        assert_ne!(labels[0], labels[50]);
    }

    #[test]
    fn outlier_is_noise() {
        let mut pts = blob(0.0, 0.0, 40, 0.4, 11);
        pts.push(vec![100.0, -50.0]);
        let (labels, _) = Dbscan {
            eps: 1.0,
            min_pts: 4,
        }
        .fit(&pts);
        assert_eq!(*labels.last().unwrap(), NOISE);
    }

    #[test]
    fn predict_assigns_near_and_rejects_far() {
        let pts = blob(5.0, 5.0, 60, 0.5, 13);
        let (_, model) = Dbscan {
            eps: 1.0,
            min_pts: 4,
        }
        .fit(&pts);
        assert!(model.predict(&[5.1, 4.9]).is_some());
        assert!(model.predict(&[50.0, 50.0]).is_none());
        assert!(model.matches(&[5.1, 4.9]));
        assert!(!model.matches(&[50.0, 50.0]));
    }

    #[test]
    fn min_pts_larger_than_data_all_noise() {
        let pts = blob(0.0, 0.0, 5, 0.2, 17);
        let (labels, model) = Dbscan {
            eps: 0.5,
            min_pts: 10,
        }
        .fit(&pts);
        assert!(labels.iter().all(|&l| l == NOISE));
        assert_eq!(model.n_clusters(), 0);
        assert_eq!(model.n_core_points(), 0);
        assert!(model.predict(&[0.0, 0.0]).is_none());
        assert!(!model.matches(&[0.0, 0.0]));
    }

    #[test]
    fn chain_is_density_connected() {
        // A line of points spaced 0.5 apart with eps 0.6 forms one cluster.
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.5, 0.0]).collect();
        let (labels, model) = Dbscan {
            eps: 0.6,
            min_pts: 3,
        }
        .fit(&pts);
        assert_eq!(model.n_clusters(), 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_input() {
        let (labels, model) = Dbscan {
            eps: 1.0,
            min_pts: 3,
        }
        .fit(&[]);
        assert!(labels.is_empty());
        assert_eq!(model.n_clusters(), 0);
        assert!(!model.matches(&[]));
    }

    #[test]
    fn duplicate_points_cluster_together() {
        // 10 exact copies of one point + far noise: duplicates are mutual
        // zero-distance neighbors, so they form one cluster.
        let mut pts: Vec<Vec<f64>> = (0..10).map(|_| vec![1.0, 2.0, 3.0]).collect();
        pts.push(vec![500.0, 500.0, 500.0]);
        let (labels, model) = Dbscan {
            eps: 0.5,
            min_pts: 4,
        }
        .fit(&pts);
        assert_eq!(model.n_clusters(), 1);
        assert!(labels[..10].iter().all(|&l| l == 0));
        assert_eq!(labels[10], NOISE);
        assert_eq!(model.n_core_points(), 10);
    }

    #[test]
    fn degenerate_eps_matches_brute_force() {
        // eps = 0: only exact duplicates are neighbors (distance 0 <= 0).
        let pts = vec![
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 2.0],
        ];
        let (labels, model) = Dbscan {
            eps: 0.0,
            min_pts: 3,
        }
        .fit(&pts);
        assert_eq!(labels, vec![0, 0, 0, NOISE]);
        assert_eq!(model.n_clusters(), 1);
    }

    #[test]
    fn feature_matrix_roundtrip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = FeatureMatrix::from_rows(&rows);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let collected: Vec<Vec<f64>> = m.iter().map(|r| r.to_vec()).collect();
        assert_eq!(collected, rows);
        let mut m = m;
        m.clear();
        assert!(m.is_empty());
        m.push_row(&[9.0, 9.0]);
        assert_eq!(m.n_rows(), 1);
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let pts = vec![vec![10.0, 100.0], vec![20.0, 200.0], vec![30.0, 300.0]];
        let s = Standardizer::fit(&pts).unwrap();
        let mut m = FeatureMatrix::from_rows(&pts);
        s.transform_matrix(&mut m);
        for d in 0..2 {
            let col: Vec<f64> = m.iter().map(|p| p[d]).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardizer_transform_into_matches_deprecated_transform() {
        let pts = vec![vec![10.0, 100.0], vec![20.0, 200.0], vec![30.0, 300.0]];
        let s = Standardizer::fit(&pts).unwrap();
        let mut scratch = Vec::new();
        s.transform_into(&[15.0, 150.0], &mut scratch);
        #[allow(deprecated)]
        let old = s.transform(&[15.0, 150.0]);
        assert_eq!(scratch, old);
    }

    #[test]
    fn standardizer_constant_feature() {
        let pts = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let s = Standardizer::fit(&pts).unwrap();
        let mut t = Vec::new();
        s.transform_into(&[5.0, 2.0], &mut t);
        assert_eq!(t[0], 0.0);
    }

    #[test]
    fn standardizer_empty() {
        assert!(Standardizer::fit(&[]).is_none());
        assert!(Standardizer::fit_matrix(&FeatureMatrix::new(4)).is_none());
    }

    #[test]
    fn standardization_makes_scales_comparable() {
        // Same structure, but one feature is 1000x the scale of the other;
        // without standardization DBSCAN on eps=1 sees one smear.
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![i as f64 * 0.01, 0.0]);
            pts.push(vec![i as f64 * 0.01, 5000.0]);
        }
        let mut m = FeatureMatrix::from_rows(&pts);
        let s = Standardizer::fit_matrix(&m).unwrap();
        s.transform_matrix(&mut m);
        let (_, model) = Dbscan {
            eps: 0.5,
            min_pts: 3,
        }
        .fit_matrix(&m);
        assert_eq!(model.n_clusters(), 2);
    }

    #[test]
    fn model_parts_roundtrip_and_reject_corruption() {
        let pts = blob(0.0, 0.0, 40, 0.5, 21);
        let (_, model) = Dbscan {
            eps: 1.0,
            min_pts: 4,
        }
        .fit(&pts);
        let rebuilt = DbscanModel::from_parts(
            model.eps(),
            model.dim(),
            model.cores().to_vec(),
            model.core_orig().to_vec(),
            model.label_offsets().to_vec(),
        )
        .unwrap();
        for p in &pts {
            assert_eq!(rebuilt.predict(p), model.predict(p));
            assert_eq!(rebuilt.matches(p), model.matches(p));
        }
        // Structural corruption is rejected, never panics.
        assert!(DbscanModel::from_parts(f64::NAN, 2, vec![], vec![], vec![0]).is_err());
        assert!(DbscanModel::from_parts(1.0, 2, vec![0.0], vec![0], vec![0, 1]).is_err());
        assert!(DbscanModel::from_parts(1.0, 1, vec![0.0], vec![0], vec![1, 1]).is_err());
        assert!(DbscanModel::from_parts(1.0, 1, vec![0.0], vec![0], vec![0, 2]).is_err());
        assert!(DbscanModel::from_parts(1.0, 1, vec![f64::NAN], vec![0], vec![0, 1]).is_err());
        assert!(DbscanModel::from_parts(1.0, 1, vec![0.0], vec![0], vec![]).is_err());

        let s = Standardizer::fit(&pts).unwrap();
        let (means, stds) = s.params();
        let s2 = Standardizer::from_params(means.to_vec(), stds.to_vec()).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        s.transform_into(&pts[0], &mut a);
        s2.transform_into(&pts[0], &mut b);
        assert_eq!(a, b);
        assert!(Standardizer::from_params(vec![0.0], vec![1.0, 1.0]).is_err());
        assert!(Standardizer::from_params(vec![f64::INFINITY], vec![1.0]).is_err());
        assert!(Standardizer::from_params(vec![0.0], vec![0.0]).is_err());
    }

    #[test]
    fn predict_tie_breaks_by_training_order() {
        // Two isolated triples of duplicate points form two clusters whose
        // core points are equidistant from the midpoint query; the old full
        // scan returned the first (lowest training index) hit — cluster 0.
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![10.0, 0.0],
            vec![10.0, 0.0],
            vec![10.0, 0.0],
        ];
        let (labels, model) = Dbscan {
            eps: 6.0,
            min_pts: 3,
        }
        .fit(&pts);
        assert_eq!(labels, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(model.predict(&[5.0, 0.0]), Some(0));
    }
}
