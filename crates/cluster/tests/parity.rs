//! Old-vs-new parity: the flat-matrix / grid-indexed clustering core must be
//! **byte-identical** to the pre-rewrite implementation.
//!
//! The [`baseline`] module is a faithful vendored copy of the crate as it
//! stood before the flat-matrix rewrite: `Vec<Vec<f64>>` points, O(n)
//! full-scan neighbor queries recomputed at every use, first-match-wins
//! predict. Each property generates a point set (mixed dimensions, eps,
//! min_pts, with duplicate and colinear points made likely by snapping
//! coordinates to a coarse lattice), runs both implementations, and asserts:
//!
//! * standardizer parameters transform points to bitwise-equal values,
//! * DBSCAN labels are exactly equal (same cluster ids, same noise),
//! * cluster count and core-point count are equal,
//! * `predict` returns the same label (including distance ties, which the
//!   lattice snapping makes common) and `matches` agrees with
//!   `predict(..).is_some()` for every training point and for off-training
//!   probe points.
//!
//! The whole comparison also runs inside `behaviot_par::par_map` under
//! `Parallelism::Off` and `Parallelism::Fixed(2)` — the way `train_group`
//! invokes this code — pinning that worker-thread context changes nothing.

use behaviot_cluster::{Dbscan, FeatureMatrix, Standardizer, NOISE};
use behaviot_par::{par_map, Parallelism};
use proptest::prelude::*;

/// The clustering core exactly as it was before the flat-matrix rewrite.
mod baseline {
    pub const NOISE: i32 = -1;

    pub struct Standardizer {
        means: Vec<f64>,
        stds: Vec<f64>,
    }

    impl Standardizer {
        pub fn fit(points: &[Vec<f64>]) -> Option<Self> {
            let dim = points.first()?.len();
            let n = points.len() as f64;
            let mut means = vec![0.0; dim];
            for p in points {
                assert_eq!(p.len(), dim, "inconsistent dimensions");
                for (m, &x) in means.iter_mut().zip(p) {
                    *m += x;
                }
            }
            for m in means.iter_mut() {
                *m /= n;
            }
            let mut stds = vec![0.0; dim];
            for p in points {
                for ((s, &m), &x) in stds.iter_mut().zip(&means).zip(p) {
                    *s += (x - m) * (x - m);
                }
            }
            for s in stds.iter_mut() {
                *s = (*s / n).sqrt();
                if *s < 1e-12 {
                    *s = 1.0;
                }
            }
            Some(Self { means, stds })
        }

        pub fn transform(&self, point: &[f64]) -> Vec<f64> {
            assert_eq!(point.len(), self.means.len(), "dimension mismatch");
            point
                .iter()
                .zip(self.means.iter().zip(&self.stds))
                .map(|(&x, (&m, &s))| (x - m) / s)
                .collect()
        }

        pub fn transform_all(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
            points.iter().map(|p| self.transform(p)).collect()
        }
    }

    #[derive(Clone, Copy)]
    pub struct Dbscan {
        pub eps: f64,
        pub min_pts: usize,
    }

    fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    impl Dbscan {
        pub fn fit(&self, points: &[Vec<f64>]) -> (Vec<i32>, DbscanModel) {
            let n = points.len();
            let eps_sq = self.eps * self.eps;
            let mut labels = vec![NOISE; n];
            let mut visited = vec![false; n];
            let mut cluster = 0i32;

            let neighbors = |i: usize| -> Vec<usize> {
                (0..n)
                    .filter(|&j| dist_sq(&points[i], &points[j]) <= eps_sq)
                    .collect()
            };

            for i in 0..n {
                if visited[i] {
                    continue;
                }
                visited[i] = true;
                let nbrs = neighbors(i);
                if nbrs.len() < self.min_pts {
                    continue;
                }
                labels[i] = cluster;
                let mut queue: Vec<usize> = nbrs;
                let mut qi = 0;
                while qi < queue.len() {
                    let j = queue[qi];
                    qi += 1;
                    if labels[j] == NOISE {
                        labels[j] = cluster;
                    }
                    if visited[j] {
                        continue;
                    }
                    visited[j] = true;
                    labels[j] = cluster;
                    let jn = neighbors(j);
                    if jn.len() >= self.min_pts {
                        queue.extend(jn);
                    }
                }
                cluster += 1;
            }

            let mut core_points = Vec::new();
            let mut core_labels = Vec::new();
            for i in 0..n {
                if labels[i] == NOISE {
                    continue;
                }
                if neighbors(i).len() >= self.min_pts {
                    core_points.push(points[i].clone());
                    core_labels.push(labels[i]);
                }
            }
            (
                labels,
                DbscanModel {
                    eps: self.eps,
                    core_points,
                    core_labels,
                    n_clusters: cluster as usize,
                },
            )
        }
    }

    pub struct DbscanModel {
        eps: f64,
        core_points: Vec<Vec<f64>>,
        core_labels: Vec<i32>,
        n_clusters: usize,
    }

    impl DbscanModel {
        pub fn n_clusters(&self) -> usize {
            self.n_clusters
        }

        pub fn n_core_points(&self) -> usize {
            self.core_points.len()
        }

        pub fn predict(&self, point: &[f64]) -> Option<i32> {
            let eps_sq = self.eps * self.eps;
            let mut best: Option<(f64, i32)> = None;
            for (cp, &lab) in self.core_points.iter().zip(&self.core_labels) {
                let d = dist_sq(cp, point);
                if d <= eps_sq && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, lab));
                }
            }
            best.map(|(_, lab)| lab)
        }
    }
}

/// Deterministic point-set generator: `n` points of dimension `dim`, with
/// coordinates snapped to a lattice of step `1/4` in `[-2, 2]` (duplicates
/// and exact distance ties are therefore common), plus every 7th point made
/// colinear along the first axis.
fn lattice_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            if i % 7 == 3 {
                // Colinear run: points on the x-axis at lattice spacing.
                let mut p = vec![0.0; dim];
                p[0] = (i % 16) as f64 * 0.25;
                p
            } else {
                (0..dim)
                    .map(|_| ((next() * 16.0).floor() - 8.0) * 0.25)
                    .collect()
            }
        })
        .collect()
}

/// Probe points for predict parity: every training point plus lattice
/// offsets around the data range (on-boundary, off-cluster, far away).
fn probes(points: &[Vec<f64>], dim: usize) -> Vec<Vec<f64>> {
    let mut out: Vec<Vec<f64>> = points.to_vec();
    for k in 0..24 {
        let mut p = vec![0.0; dim];
        for (d, slot) in p.iter_mut().enumerate() {
            *slot = ((k + d) % 19) as f64 * 0.25 - 2.0;
        }
        out.push(p);
    }
    out.push(vec![1e3; dim]); // far outside every cluster
    out
}

/// Run the full second stage (standardize + DBSCAN fit + predict) through
/// both implementations and assert byte-identical behavior.
fn assert_parity(points: &[Vec<f64>], eps: f64, min_pts: usize) {
    let dim = points.first().map_or(0, |p| p.len());

    // Baseline pipeline.
    let (old_std_points, old_labels, old_model) = match baseline::Standardizer::fit(points) {
        Some(s) => {
            let t = s.transform_all(points);
            let (labels, model) = baseline::Dbscan { eps, min_pts }.fit(&t);
            (t, labels, model)
        }
        None => {
            let (labels, model) = baseline::Dbscan { eps, min_pts }.fit(&[]);
            (Vec::new(), labels, model)
        }
    };

    // Flat-matrix pipeline.
    let mut matrix = FeatureMatrix::from_rows(points);
    if let Some(s) = Standardizer::fit_matrix(&matrix) {
        s.transform_matrix(&mut matrix);
    }
    let (new_labels, new_model) = Dbscan { eps, min_pts }.fit_matrix(&matrix);

    // Standardized values are bitwise equal.
    for (i, old_row) in old_std_points.iter().enumerate() {
        for (d, (&o, &n)) in old_row.iter().zip(matrix.row(i)).enumerate() {
            assert_eq!(
                o.to_bits(),
                n.to_bits(),
                "standardized value diverged at point {i} dim {d}"
            );
        }
    }

    // Labels byte-identical, structure equal.
    assert_eq!(new_labels, old_labels, "labels diverged (eps={eps}, min_pts={min_pts})");
    assert_eq!(new_model.n_clusters(), old_model.n_clusters());
    assert_eq!(new_model.n_core_points(), old_model.n_core_points());
    assert_eq!(
        new_labels.iter().filter(|&&l| l == NOISE).count(),
        old_labels.iter().filter(|&&l| l == baseline::NOISE).count()
    );

    // Predict parity on training points and probes (standardized space).
    let probe_set = probes(&old_std_points, dim);
    for (k, p) in probe_set.iter().enumerate() {
        let old = old_model.predict(p);
        let new = new_model.predict(p);
        assert_eq!(new, old, "predict diverged on probe {k}");
        assert_eq!(new_model.matches(p), old.is_some(), "matches diverged on probe {k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// New labels and predictions equal the vendored baseline across mixed
    /// dimensions, radii, and densities — and the comparison behaves
    /// identically when run from `behaviot-par` worker threads under
    /// `Parallelism::Off` and `Parallelism::Fixed(2)`, the two policies the
    /// training pipeline pins in its own determinism gates.
    #[test]
    fn flat_matrix_core_matches_baseline(
        n in 0usize..140,
        dim in 1usize..6,
        eps_q in 1usize..12,
        min_pts in 1usize..8,
        seed in 1u64..1_000_000,
    ) {
        let eps = eps_q as f64 * 0.25;
        let points = lattice_points(n, dim, seed);
        for par in [Parallelism::Off, Parallelism::Fixed(2)] {
            let jobs = [(points.clone(), eps, min_pts), (points.clone(), eps, min_pts)];
            let done = par_map(par, &jobs, |(pts, eps, min_pts)| {
                assert_parity(pts, *eps, *min_pts);
                true
            });
            prop_assert!(done.into_iter().all(|d| d));
        }
    }

    /// Dedicated duplicate-heavy generator: many exact copies, tiny eps —
    /// the regime where zero distances, self-neighbors, and predict ties
    /// are the norm rather than the exception.
    #[test]
    fn duplicates_and_ties_match_baseline(
        n_uniq in 1usize..12,
        copies in 1usize..10,
        dim in 1usize..5,
        min_pts in 1usize..9,
        seed in 1u64..1_000_000,
    ) {
        let uniq = lattice_points(n_uniq, dim, seed);
        let mut points = Vec::with_capacity(n_uniq * copies);
        for p in &uniq {
            for _ in 0..copies {
                points.push(p.clone());
            }
        }
        assert_parity(&points, 0.25, min_pts);
        assert_parity(&points, 0.0, min_pts); // eps 0: duplicates only
    }
}

#[test]
fn colinear_chain_matches_baseline() {
    // A pure line at lattice spacing, eps exactly the spacing: boundary
    // distances are exact, so any index-order drift would flip labels.
    for n in [0usize, 1, 2, 5, 30, 77] {
        let points: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.25, 0.0]).collect();
        for min_pts in [1usize, 2, 3, 5] {
            assert_parity(&points, 0.25, min_pts);
        }
    }
}

#[test]
fn high_dim_21_features_match_baseline() {
    // The pipeline's real shape: 21-dimensional flow features.
    let points = lattice_points(90, 21, 42);
    for eps in [0.5, 1.0, 2.5] {
        for min_pts in [2usize, 4, 8] {
            assert_parity(&points, eps, min_pts);
        }
    }
}
