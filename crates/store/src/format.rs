//! Line-level encoding primitives shared by every artifact format.
//!
//! The store's files are pipe-separated text: human-diffable, line
//! oriented, and byte-deterministic. Two primitives make that possible:
//!
//! * **Float canonicalization** — [`fmt_f64`] renders with Rust's
//!   shortest-round-trip `{:?}` formatting, which is guaranteed to parse
//!   back to the identical bit pattern (including `-0.0` and subnormals).
//!   Save→load→save is therefore byte-stable, and restored models compute
//!   bit-identical results. Non-finite values are rejected at both ends:
//!   a model containing NaN/∞ is corrupt and must not round-trip silently.
//! * **Percent escaping** — [`escape`] protects the bytes with structural
//!   meaning (`|` field separator, `\n` record separator, `\r` — which
//!   `str::lines` would silently strip before a `\n` — and `%` itself), so
//!   arbitrary destination domains, device names, and activity labels
//!   survive unchanged.

/// Canonical text encoding of a finite `f64`. Returns `None` for NaN and
/// infinities — non-finite values never enter a snapshot.
pub fn fmt_f64(v: f64) -> Option<String> {
    if !v.is_finite() {
        return None;
    }
    Some(format!("{v:?}"))
}

/// Parse a float previously written by [`fmt_f64`]. Returns `None` on
/// malformed input *or* a non-finite value (a corrupted file must not
/// smuggle NaN into a model).
pub fn parse_f64(s: &str) -> Option<f64> {
    let v: f64 = s.parse().ok()?;
    if !v.is_finite() {
        return None;
    }
    Some(v)
}

/// Escape `%`, `|`, `\n`, and `\r` so arbitrary strings can live in one
/// pipe-separated field. `\r` must be escaped because all parsers split on
/// `str::lines`, which strips a `\r` preceding each `\n` — unescaped, a
/// string ending in `\r` would lose that byte on load.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '|' => out.push_str("%7C"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape`]. Returns `None` on a malformed or unknown escape
/// sequence.
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            match s.get(i..i + 3)? {
                "%25" => out.push('%'),
                "%7C" => out.push('|'),
                "%0A" => out.push('\n'),
                "%0D" => out.push('\r'),
                _ => return None,
            }
            i += 3;
        } else {
            let c = s[i..].chars().next()?;
            out.push(c);
            i += c.len_utf8();
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_exact() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -123.456789,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0, // subnormal
            f64::MAX,
            1.0 / 3.0,
            2.2250738585072014e-308,
        ] {
            let s = fmt_f64(v).unwrap();
            let back = parse_f64(&s).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v:?} -> {s}");
        }
    }

    #[test]
    fn non_finite_rejected_both_ways() {
        assert!(fmt_f64(f64::NAN).is_none());
        assert!(fmt_f64(f64::INFINITY).is_none());
        assert!(fmt_f64(f64::NEG_INFINITY).is_none());
        assert!(parse_f64("NaN").is_none());
        assert!(parse_f64("inf").is_none());
        assert!(parse_f64("-inf").is_none());
        assert!(parse_f64("garbage").is_none());
        assert!(parse_f64("").is_none());
    }

    #[test]
    fn escaping_round_trips() {
        for s in [
            "", "plain", "a|b", "100%|done", "line\nbreak", "%7C", "%", "trailing\r",
            "crlf\r\nmid", "\r",
        ] {
            let e = escape(s);
            assert!(!e.contains('|') && !e.contains('\n') && !e.contains('\r'));
            assert_eq!(unescape(&e).unwrap(), s);
        }
        assert!(unescape("%7").is_none());
        assert!(unescape("%zz").is_none());
    }
}
