//! Per-artifact render/parse pairs.
//!
//! Every artifact is pipe-separated text built on [`crate::format`]. Each
//! `render_*` is the exact inverse of its `parse_*`: save→load→save is
//! byte-identical (pinned by the round-trip proptests), and every parse
//! failure is a typed [`StoreError`] naming the artifact and line — a
//! corrupted snapshot never panics and never half-loads.

use crate::format::{escape, fmt_f64, parse_f64, unescape};
use crate::StoreError;
use behaviot::{
    HealthConfig, HealthExport, HealthState, MonitorConfig, MonitorState, PeriodicModel,
    PeriodicTrainConfig, SystemModel, SystemModelConfig,
};
use behaviot_cluster::{DbscanModel, Standardizer};
use behaviot_forest::{DecisionTree, NodeSpec, RandomForest};
use behaviot_intern::{FxHashSet, Symbol};
use behaviot_net::Proto;
use std::collections::HashMap;
use std::net::Ipv4Addr;

// ---------------------------------------------------------------------------
// shared helpers

fn non_finite(artifact: &str) -> StoreError {
    StoreError::NonFinite {
        artifact: artifact.to_string(),
    }
}

fn bad(artifact: &str, line: usize, reason: impl Into<String>) -> StoreError {
    StoreError::BadRecord {
        artifact: artifact.to_string(),
        line,
        reason: reason.into(),
    }
}

/// Render a finite float or fail with [`StoreError::NonFinite`].
fn ff(artifact: &str, v: f64) -> Result<String, StoreError> {
    fmt_f64(v).ok_or_else(|| non_finite(artifact))
}

fn pf(artifact: &str, line: usize, s: &str, what: &str) -> Result<f64, StoreError> {
    parse_f64(s).ok_or_else(|| bad(artifact, line, format!("bad {what}")))
}

fn pu(artifact: &str, line: usize, s: &str, what: &str) -> Result<usize, StoreError> {
    s.parse()
        .map_err(|_| bad(artifact, line, format!("bad {what}")))
}

fn pu32(artifact: &str, line: usize, s: &str, what: &str) -> Result<u32, StoreError> {
    s.parse()
        .map_err(|_| bad(artifact, line, format!("bad {what}")))
}

fn pip(artifact: &str, line: usize, s: &str) -> Result<Ipv4Addr, StoreError> {
    s.parse()
        .map_err(|_| bad(artifact, line, "bad IPv4 address"))
}

fn pstr(artifact: &str, line: usize, s: &str) -> Result<String, StoreError> {
    unescape(s).ok_or_else(|| bad(artifact, line, "bad escape sequence"))
}

fn pproto(artifact: &str, line: usize, s: &str) -> Result<Proto, StoreError> {
    match s {
        "TCP" => Ok(Proto::Tcp),
        "UDP" => Ok(Proto::Udp),
        _ => Err(bad(artifact, line, "bad protocol")),
    }
}

/// Comma-joined canonical floats (empty slice renders as the empty string).
fn render_f64_list(artifact: &str, vals: &[f64]) -> Result<String, StoreError> {
    let parts: Result<Vec<String>, StoreError> =
        vals.iter().map(|&v| ff(artifact, v)).collect();
    Ok(parts?.join(","))
}

fn parse_f64_list(
    artifact: &str,
    line: usize,
    s: &str,
    what: &str,
) -> Result<Vec<f64>, StoreError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(|p| pf(artifact, line, p, what)).collect()
}

// ---------------------------------------------------------------------------
// periodic.cfg — training configuration + coverage

/// Render the periodic training configuration plus coverage fraction.
pub(crate) fn render_periodic_cfg(
    artifact: &str,
    cfg: &PeriodicTrainConfig,
    coverage: f64,
) -> Result<String, StoreError> {
    let d = &cfg.detector;
    Ok(format!(
        "train|{}|{}|{}|{}|{}\ndetector|{}|{}|{}|{}|{}|{}|{}\ncoverage|{}\n",
        ff(artifact, cfg.timer_tolerance)?,
        cfg.max_missed,
        ff(artifact, cfg.dbscan_eps)?,
        cfg.dbscan_min_pts,
        cfg.dbscan_max_train,
        d.min_events,
        d.max_bins,
        ff(artifact, d.power_sigma)?,
        ff(artifact, d.acf_threshold)?,
        d.max_candidates,
        ff(artifact, d.merge_tolerance)?,
        ff(artifact, d.min_cycles)?,
        ff(artifact, coverage)?,
    ))
}

/// Parse [`render_periodic_cfg`]'s output.
pub(crate) fn parse_periodic_cfg(
    artifact: &str,
    content: &str,
) -> Result<(PeriodicTrainConfig, f64), StoreError> {
    let lines: Vec<&str> = content.lines().collect();
    if lines.len() != 3 {
        return Err(bad(artifact, lines.len(), "expected exactly 3 lines"));
    }
    let t: Vec<&str> = lines[0].split('|').collect();
    if t.len() != 6 || t[0] != "train" {
        return Err(bad(artifact, 1, "bad train line"));
    }
    let d: Vec<&str> = lines[1].split('|').collect();
    if d.len() != 8 || d[0] != "detector" {
        return Err(bad(artifact, 2, "bad detector line"));
    }
    let c: Vec<&str> = lines[2].split('|').collect();
    if c.len() != 2 || c[0] != "coverage" {
        return Err(bad(artifact, 3, "bad coverage line"));
    }
    let mut cfg = PeriodicTrainConfig {
        timer_tolerance: pf(artifact, 1, t[1], "timer tolerance")?,
        max_missed: pu32(artifact, 1, t[2], "max missed")?,
        dbscan_eps: pf(artifact, 1, t[3], "dbscan eps")?,
        dbscan_min_pts: pu(artifact, 1, t[4], "dbscan min pts")?,
        dbscan_max_train: pu(artifact, 1, t[5], "dbscan max train")?,
        ..Default::default()
    };
    cfg.detector.min_events = pu(artifact, 2, d[1], "min events")?;
    cfg.detector.max_bins = pu(artifact, 2, d[2], "max bins")?;
    cfg.detector.power_sigma = pf(artifact, 2, d[3], "power sigma")?;
    cfg.detector.acf_threshold = pf(artifact, 2, d[4], "acf threshold")?;
    cfg.detector.max_candidates = pu(artifact, 2, d[5], "max candidates")?;
    cfg.detector.merge_tolerance = pf(artifact, 2, d[6], "merge tolerance")?;
    cfg.detector.min_cycles = pf(artifact, 2, d[7], "min cycles")?;
    let coverage = pf(artifact, 3, c[1], "coverage")?;
    Ok((cfg, coverage))
}

// ---------------------------------------------------------------------------
// periodic@<device> — one device's periodic models

/// Render one device's periodic models (pre-sorted by destination/proto).
pub(crate) fn render_periodic_device(
    artifact: &str,
    models: &[&PeriodicModel],
) -> Result<String, StoreError> {
    let mut out = String::new();
    for m in models {
        out.push_str(&format!(
            "model|{}|{}|{}\n",
            escape(m.destination.as_str()),
            m.proto,
            m.n_train
        ));
        let periods: Result<Vec<String>, StoreError> =
            m.periods.iter().map(|&p| ff(artifact, p)).collect();
        out.push_str(&format!("periods|{}\n", periods?.join("|")));
        let (means, stds) = m.standardizer().params();
        out.push_str(&format!(
            "std|{}|{}\n",
            render_f64_list(artifact, means)?,
            render_f64_list(artifact, stds)?
        ));
        let c = m.cluster();
        out.push_str(&format!("cluster|{}|{}\n", ff(artifact, c.eps())?, c.dim()));
        let offsets: Vec<String> = c.label_offsets().iter().map(ToString::to_string).collect();
        out.push_str(&format!("offsets|{}\n", offsets.join("|")));
        let dim = c.dim();
        for (i, &orig) in c.core_orig().iter().enumerate() {
            let row = &c.cores()[i * dim..(i + 1) * dim];
            out.push_str(&format!("core|{orig}|{}\n", render_f64_list(artifact, row)?));
        }
    }
    Ok(out)
}

/// Accumulator for one in-flight `model|` group during device parsing.
struct PendingPeriodic {
    line: usize,
    dest: Symbol,
    proto: Proto,
    n_train: usize,
    periods: Option<Vec<f64>>,
    std: Option<(Vec<f64>, Vec<f64>)>,
    cluster: Option<(f64, usize)>,
    offsets: Option<Vec<usize>>,
    cores: Vec<(u32, Vec<f64>)>,
}

impl PendingPeriodic {
    fn finish(self, artifact: &str, device: Ipv4Addr) -> Result<PeriodicModel, StoreError> {
        let line = self.line;
        let err = move |reason: &str| bad(artifact, line, reason.to_string());
        let periods = self.periods.ok_or_else(|| err("missing periods line"))?;
        let (means, stds) = self.std.ok_or_else(|| err("missing std line"))?;
        let (eps, dim) = self.cluster.ok_or_else(|| err("missing cluster line"))?;
        let offsets = self.offsets.ok_or_else(|| err("missing offsets line"))?;
        let mut cores = Vec::with_capacity(self.cores.len() * dim);
        let mut core_orig = Vec::with_capacity(self.cores.len());
        for (orig, row) in self.cores {
            if row.len() != dim {
                return Err(err("core row dimension mismatch"));
            }
            core_orig.push(orig);
            cores.extend_from_slice(&row);
        }
        let standardizer = Standardizer::from_params(means, stds).map_err(err)?;
        let cluster =
            DbscanModel::from_parts(eps, dim, cores, core_orig, offsets).map_err(err)?;
        PeriodicModel::from_parts(
            device,
            self.dest,
            self.proto,
            periods,
            self.n_train,
            standardizer,
            cluster,
        )
        .map_err(err)
    }
}

/// Parse [`render_periodic_device`]'s output back into models for `device`.
pub(crate) fn parse_periodic_device(
    artifact: &str,
    device: Ipv4Addr,
    content: &str,
) -> Result<Vec<PeriodicModel>, StoreError> {
    let mut out = Vec::new();
    let mut seen: FxHashSet<(Symbol, Proto)> = FxHashSet::default();
    let mut pending: Option<PendingPeriodic> = None;
    for (i, line) in content.lines().enumerate() {
        let ln = i + 1;
        let fields: Vec<&str> = line.split('|').collect();
        match fields[0] {
            "model" => {
                if let Some(p) = pending.take() {
                    out.push(p.finish(artifact, device)?);
                }
                if fields.len() != 4 {
                    return Err(bad(artifact, ln, "bad model line"));
                }
                let dest = Symbol::intern(&pstr(artifact, ln, fields[1])?);
                let proto = pproto(artifact, ln, fields[2])?;
                if !seen.insert((dest, proto)) {
                    return Err(StoreError::Duplicate {
                        artifact: artifact.to_string(),
                        key: format!("{dest}|{proto}"),
                    });
                }
                pending = Some(PendingPeriodic {
                    line: ln,
                    dest,
                    proto,
                    n_train: pu(artifact, ln, fields[3], "n_train")?,
                    periods: None,
                    std: None,
                    cluster: None,
                    offsets: None,
                    cores: Vec::new(),
                });
            }
            kind @ ("periods" | "std" | "cluster" | "offsets" | "core") => {
                let p = pending
                    .as_mut()
                    .ok_or_else(|| bad(artifact, ln, "record before model line"))?;
                match kind {
                    "periods" => {
                        let vals: Result<Vec<f64>, StoreError> = fields[1..]
                            .iter()
                            .map(|s| pf(artifact, ln, s, "period"))
                            .collect();
                        p.periods = Some(vals?);
                    }
                    "std" => {
                        if fields.len() != 3 {
                            return Err(bad(artifact, ln, "bad std line"));
                        }
                        p.std = Some((
                            parse_f64_list(artifact, ln, fields[1], "mean")?,
                            parse_f64_list(artifact, ln, fields[2], "std dev")?,
                        ));
                    }
                    "cluster" => {
                        if fields.len() != 3 {
                            return Err(bad(artifact, ln, "bad cluster line"));
                        }
                        p.cluster = Some((
                            pf(artifact, ln, fields[1], "eps")?,
                            pu(artifact, ln, fields[2], "dim")?,
                        ));
                    }
                    "offsets" => {
                        let vals: Result<Vec<usize>, StoreError> = fields[1..]
                            .iter()
                            .map(|s| pu(artifact, ln, s, "offset"))
                            .collect();
                        p.offsets = Some(vals?);
                    }
                    _ => {
                        if fields.len() != 3 {
                            return Err(bad(artifact, ln, "bad core line"));
                        }
                        p.cores.push((
                            pu32(artifact, ln, fields[1], "core origin")?,
                            parse_f64_list(artifact, ln, fields[2], "core coordinate")?,
                        ));
                    }
                }
            }
            _ => return Err(bad(artifact, ln, "unknown record kind")),
        }
    }
    if let Some(p) = pending.take() {
        out.push(p.finish(artifact, device)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// user.cfg — classification threshold

/// Render the user-action classification configuration.
pub(crate) fn render_user_cfg(artifact: &str, confidence: f64) -> Result<String, StoreError> {
    Ok(format!("confidence|{}\n", ff(artifact, confidence)?))
}

/// Parse [`render_user_cfg`]'s output.
pub(crate) fn parse_user_cfg(artifact: &str, content: &str) -> Result<f64, StoreError> {
    let lines: Vec<&str> = content.lines().collect();
    if lines.len() != 1 {
        return Err(bad(artifact, lines.len(), "expected exactly 1 line"));
    }
    let f: Vec<&str> = lines[0].split('|').collect();
    if f.len() != 2 || f[0] != "confidence" {
        return Err(bad(artifact, 1, "bad confidence line"));
    }
    pf(artifact, 1, f[1], "confidence threshold")
}

// ---------------------------------------------------------------------------
// user@<device> — one device's per-activity forests

fn render_node(artifact: &str, node: &NodeSpec) -> Result<String, StoreError> {
    Ok(match *node {
        NodeSpec::Leaf { prob } => format!("L:{}", ff(artifact, prob)?),
        NodeSpec::Split {
            feature,
            threshold,
            left,
            right,
        } => format!("S:{feature}:{}:{left}:{right}", ff(artifact, threshold)?),
    })
}

fn parse_node(artifact: &str, line: usize, s: &str) -> Result<NodeSpec, StoreError> {
    let parts: Vec<&str> = s.split(':').collect();
    match parts[0] {
        "L" if parts.len() == 2 => Ok(NodeSpec::Leaf {
            prob: pf(artifact, line, parts[1], "leaf probability")?,
        }),
        "S" if parts.len() == 5 => Ok(NodeSpec::Split {
            feature: pu(artifact, line, parts[1], "split feature")?,
            threshold: pf(artifact, line, parts[2], "split threshold")?,
            left: pu(artifact, line, parts[3], "left child")?,
            right: pu(artifact, line, parts[4], "right child")?,
        }),
        _ => Err(bad(artifact, line, "bad node encoding")),
    }
}

/// Render one device's `(activity, forest)` list, preserving order (the
/// classifier's first-wins tie-break makes order behavioral).
pub(crate) fn render_user_device(
    artifact: &str,
    list: &[(Symbol, RandomForest)],
) -> Result<String, StoreError> {
    let mut out = String::new();
    for (act, forest) in list {
        let oob = match forest.oob_score() {
            Some(s) => ff(artifact, s)?,
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "activity|{}|{}|{}\n",
            escape(act.as_str()),
            forest.n_trees(),
            oob
        ));
        for tree in forest.trees() {
            let nodes: Result<Vec<String>, StoreError> = tree
                .export_nodes()
                .iter()
                .map(|n| render_node(artifact, n))
                .collect();
            out.push_str(&format!("tree|{}|{}\n", tree.n_features(), nodes?.join("|")));
        }
    }
    Ok(out)
}

/// One in-flight `activity|` group during device parsing.
struct PendingForest {
    act: Symbol,
    n_trees: usize,
    oob: Option<f64>,
    trees: Vec<DecisionTree>,
    line: usize,
}

/// Parse [`render_user_device`]'s output.
pub(crate) fn parse_user_device(
    artifact: &str,
    content: &str,
) -> Result<Vec<(Symbol, RandomForest)>, StoreError> {
    let mut out: Vec<(Symbol, RandomForest)> = Vec::new();
    let mut seen: FxHashSet<Symbol> = FxHashSet::default();
    let mut pending: Option<PendingForest> = None;
    let finish =
        |p: PendingForest, out: &mut Vec<(Symbol, RandomForest)>| -> Result<(), StoreError> {
            if p.trees.len() != p.n_trees {
                return Err(bad(artifact, p.line, "tree count mismatch"));
            }
            let forest = RandomForest::from_trees(p.trees, p.oob)
                .map_err(|e| bad(artifact, p.line, e.to_string()))?;
            out.push((p.act, forest));
            Ok(())
        };
    for (i, line) in content.lines().enumerate() {
        let ln = i + 1;
        let fields: Vec<&str> = line.split('|').collect();
        match fields[0] {
            "activity" => {
                if let Some(p) = pending.take() {
                    finish(p, &mut out)?;
                }
                if fields.len() != 4 {
                    return Err(bad(artifact, ln, "bad activity line"));
                }
                let act = Symbol::intern(&pstr(artifact, ln, fields[1])?);
                if !seen.insert(act) {
                    return Err(StoreError::Duplicate {
                        artifact: artifact.to_string(),
                        key: act.as_str().to_string(),
                    });
                }
                let n_trees = pu(artifact, ln, fields[2], "tree count")?;
                let oob = if fields[3] == "-" {
                    None
                } else {
                    Some(pf(artifact, ln, fields[3], "oob score")?)
                };
                pending = Some(PendingForest {
                    act,
                    n_trees,
                    oob,
                    trees: Vec::new(),
                    line: ln,
                });
            }
            "tree" => {
                let p = pending
                    .as_mut()
                    .ok_or_else(|| bad(artifact, ln, "tree before activity line"))?;
                if fields.len() < 3 {
                    return Err(bad(artifact, ln, "bad tree line"));
                }
                let n_features = pu(artifact, ln, fields[1], "feature count")?;
                let nodes: Result<Vec<NodeSpec>, StoreError> = fields[2..]
                    .iter()
                    .map(|s| parse_node(artifact, ln, s))
                    .collect();
                let tree = DecisionTree::from_nodes(nodes?, n_features)
                    .map_err(|e| bad(artifact, ln, e.to_string()))?;
                p.trees.push(tree);
            }
            _ => return Err(bad(artifact, ln, "unknown record kind")),
        }
    }
    if let Some(p) = pending.take() {
        finish(p, &mut out)?;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// names — device display names

/// Render device display names, sorted by address.
pub(crate) fn render_names(names: &HashMap<Ipv4Addr, String>) -> String {
    let mut entries: Vec<(&Ipv4Addr, &String)> = names.iter().collect();
    entries.sort_by_key(|(ip, _)| **ip);
    let mut out = String::new();
    for (ip, name) in entries {
        out.push_str(&format!("name|{ip}|{}\n", escape(name)));
    }
    out
}

/// Parse [`render_names`]'s output.
pub(crate) fn parse_names(
    artifact: &str,
    content: &str,
) -> Result<HashMap<Ipv4Addr, String>, StoreError> {
    let mut out = HashMap::new();
    for (i, line) in content.lines().enumerate() {
        let ln = i + 1;
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() != 3 || fields[0] != "name" {
            return Err(bad(artifact, ln, "bad name line"));
        }
        let ip = pip(artifact, ln, fields[1])?;
        if out.contains_key(&ip) {
            return Err(StoreError::Duplicate {
                artifact: artifact.to_string(),
                key: ip.to_string(),
            });
        }
        out.insert(ip, pstr(artifact, ln, fields[2])?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// system — configuration + training traces (PFSM re-inferred on load)

/// Render the system model as its configuration plus training traces. The
/// PFSM itself is *not* persisted: [`SystemModel::from_traces`] is
/// deterministic, so config + traces rebuild it bit-identically, and the
/// artifact stays human-readable.
pub(crate) fn render_system(artifact: &str, model: &SystemModel) -> Result<String, StoreError> {
    let cfg = model.config();
    let mut out = format!(
        "cfg|{}\npfsm|{}|{}|{}\n",
        ff(artifact, cfg.trace_gap)?,
        u8::from(cfg.pfsm.refine),
        cfg.pfsm.max_splits,
        ff(artifact, cfg.pfsm.smoothing_alpha)?,
    );
    for trace in model.log.labeled_traces() {
        let labels: Vec<String> = trace.iter().map(|l| escape(l)).collect();
        out.push_str(&format!("trace|{}\n", labels.join("|")));
    }
    Ok(out)
}

/// Parse [`render_system`]'s output and re-infer the model.
pub(crate) fn parse_system(artifact: &str, content: &str) -> Result<SystemModel, StoreError> {
    let mut lines = content.lines().enumerate();
    let (_, cfg_line) = lines
        .next()
        .ok_or_else(|| bad(artifact, 1, "missing cfg line"))?;
    let c: Vec<&str> = cfg_line.split('|').collect();
    if c.len() != 2 || c[0] != "cfg" {
        return Err(bad(artifact, 1, "bad cfg line"));
    }
    let (_, pfsm_line) = lines
        .next()
        .ok_or_else(|| bad(artifact, 2, "missing pfsm line"))?;
    let p: Vec<&str> = pfsm_line.split('|').collect();
    if p.len() != 4 || p[0] != "pfsm" {
        return Err(bad(artifact, 2, "bad pfsm line"));
    }
    let mut cfg = SystemModelConfig {
        trace_gap: pf(artifact, 1, c[1], "trace gap")?,
        ..Default::default()
    };
    cfg.pfsm.refine = match p[1] {
        "0" => false,
        "1" => true,
        _ => return Err(bad(artifact, 2, "bad refine flag")),
    };
    cfg.pfsm.max_splits = pu(artifact, 2, p[2], "max splits")?;
    cfg.pfsm.smoothing_alpha = pf(artifact, 2, p[3], "smoothing alpha")?;
    let mut traces: Vec<Vec<String>> = Vec::new();
    for (i, line) in lines {
        let ln = i + 1;
        let fields: Vec<&str> = line.split('|').collect();
        if fields[0] != "trace" {
            return Err(bad(artifact, ln, "unknown record kind"));
        }
        let labels: Result<Vec<String>, StoreError> = fields[1..]
            .iter()
            .map(|s| pstr(artifact, ln, s))
            .collect();
        traces.push(labels?);
    }
    Ok(SystemModel::from_traces(&traces, &cfg))
}

// ---------------------------------------------------------------------------
// monitor — streaming monitor configuration + cross-window state

/// Render the monitor configuration and exported streaming state.
pub(crate) fn render_monitor(
    artifact: &str,
    cfg: &MonitorConfig,
    state: &MonitorState,
) -> Result<String, StoreError> {
    let mut out = format!(
        "cfg|{}|{}|{}|{}|{}|{}\n",
        ff(artifact, cfg.periodic_threshold)?,
        ff(artifact, cfg.short_sigma)?,
        ff(artifact, cfg.long_confidence)?,
        cfg.long_min_n,
        ff(artifact, cfg.long_min_count_diff)?,
        ff(artifact, cfg.trace_gap)?,
    );
    out.push_str(&format!("windows|{}\n", state.windows));
    for ((ip, dest, proto), ts) in &state.last_seen {
        out.push_str(&format!(
            "timer|{ip}|{}|{proto}|{}\n",
            escape(dest.as_str()),
            ff(artifact, *ts)?
        ));
    }
    for ip in &state.absence_flagged {
        out.push_str(&format!("absent|{ip}\n"));
    }
    for (from, to) in &state.long_flagged {
        out.push_str(&format!(
            "long|{}|{}\n",
            escape(from.as_str()),
            escape(to.as_str())
        ));
    }
    Ok(out)
}

/// Parse [`render_monitor`]'s output.
pub(crate) fn parse_monitor(
    artifact: &str,
    content: &str,
) -> Result<(MonitorConfig, MonitorState), StoreError> {
    let mut lines = content.lines().enumerate();
    let (_, cfg_line) = lines
        .next()
        .ok_or_else(|| bad(artifact, 1, "missing cfg line"))?;
    let c: Vec<&str> = cfg_line.split('|').collect();
    if c.len() != 7 || c[0] != "cfg" {
        return Err(bad(artifact, 1, "bad cfg line"));
    }
    let cfg = MonitorConfig {
        periodic_threshold: pf(artifact, 1, c[1], "periodic threshold")?,
        short_sigma: pf(artifact, 1, c[2], "short sigma")?,
        long_confidence: pf(artifact, 1, c[3], "long confidence")?,
        long_min_n: pu(artifact, 1, c[4], "long min n")?,
        long_min_count_diff: pf(artifact, 1, c[5], "long min count diff")?,
        trace_gap: pf(artifact, 1, c[6], "trace gap")?,
    };
    let mut state = MonitorState::default();
    // Duplicate keys are a hard error, matching every other artifact:
    // `Monitor::restore` collects these records into maps/sets, so
    // last-wins would silently mask a corrupted or hand-edited snapshot.
    let mut seen_timers: FxHashSet<(Ipv4Addr, Symbol, Proto)> = FxHashSet::default();
    let mut seen_absent: FxHashSet<Ipv4Addr> = FxHashSet::default();
    let mut seen_long: FxHashSet<(Symbol, Symbol)> = FxHashSet::default();
    let mut seen_windows = false;
    let dup = |key: String| StoreError::Duplicate {
        artifact: artifact.to_string(),
        key,
    };
    for (i, line) in lines {
        let ln = i + 1;
        let fields: Vec<&str> = line.split('|').collect();
        match fields[0] {
            // Ledger window counter; absent in pre-PR-10 snapshots, which
            // restart sequence numbering at 0.
            "windows" if fields.len() == 2 => {
                if seen_windows {
                    return Err(dup("windows".to_string()));
                }
                seen_windows = true;
                state.windows = fields[1]
                    .parse()
                    .map_err(|_| bad(artifact, ln, "bad window count"))?;
            }
            "timer" if fields.len() == 5 => {
                let ip = pip(artifact, ln, fields[1])?;
                let dest = Symbol::intern(&pstr(artifact, ln, fields[2])?);
                let proto = pproto(artifact, ln, fields[3])?;
                let ts = pf(artifact, ln, fields[4], "timer timestamp")?;
                if !seen_timers.insert((ip, dest, proto)) {
                    return Err(dup(format!("timer|{ip}|{dest}|{proto}")));
                }
                state.last_seen.push(((ip, dest, proto), ts));
            }
            "absent" if fields.len() == 2 => {
                let ip = pip(artifact, ln, fields[1])?;
                if !seen_absent.insert(ip) {
                    return Err(dup(format!("absent|{ip}")));
                }
                state.absence_flagged.push(ip);
            }
            "long" if fields.len() == 3 => {
                let from = Symbol::intern(&pstr(artifact, ln, fields[1])?);
                let to = Symbol::intern(&pstr(artifact, ln, fields[2])?);
                if !seen_long.insert((from, to)) {
                    return Err(dup(format!("long|{from}|{to}")));
                }
                state.long_flagged.push((from, to));
            }
            _ => return Err(bad(artifact, ln, "unknown record kind")),
        }
    }
    Ok((cfg, state))
}

// ---------------------------------------------------------------------------
// health — fleet health registry checkpoint

/// Render the health registry export: the hysteresis config plus one
/// `dev|` row per registered device, already in device-name order.
pub(crate) fn render_health(
    artifact: &str,
    export: &HealthExport,
) -> Result<String, StoreError> {
    let c = &export.cfg;
    let mut out = format!(
        "cfg|{}|{}|{}\n",
        ff(artifact, c.degrade_drop_frac)?,
        c.recover_after,
        c.stale_after,
    );
    for (device, state, clean_streak, silent_windows) in &export.records {
        out.push_str(&format!(
            "dev|{}|{}|{clean_streak}|{silent_windows}\n",
            escape(device.as_str()),
            state.label(),
        ));
    }
    Ok(out)
}

/// Parse [`render_health`]'s output.
pub(crate) fn parse_health(artifact: &str, content: &str) -> Result<HealthExport, StoreError> {
    let mut lines = content.lines().enumerate();
    let (_, cfg_line) = lines
        .next()
        .ok_or_else(|| bad(artifact, 1, "missing cfg line"))?;
    let c: Vec<&str> = cfg_line.split('|').collect();
    if c.len() != 4 || c[0] != "cfg" {
        return Err(bad(artifact, 1, "bad cfg line"));
    }
    let cfg = HealthConfig {
        degrade_drop_frac: pf(artifact, 1, c[1], "degrade drop fraction")?,
        recover_after: pu32(artifact, 1, c[2], "recover after")?,
        stale_after: pu32(artifact, 1, c[3], "stale after")?,
    };
    let mut records = Vec::new();
    let mut seen: FxHashSet<Symbol> = FxHashSet::default();
    for (i, line) in lines {
        let ln = i + 1;
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() != 5 || fields[0] != "dev" {
            return Err(bad(artifact, ln, "unknown record kind"));
        }
        let device = Symbol::intern(&pstr(artifact, ln, fields[1])?);
        let state = HealthState::parse(fields[2])
            .ok_or_else(|| bad(artifact, ln, "bad health state"))?;
        let clean_streak = pu32(artifact, ln, fields[3], "clean streak")?;
        let silent_windows = pu32(artifact, ln, fields[4], "silent windows")?;
        if !seen.insert(device) {
            return Err(StoreError::Duplicate {
                artifact: artifact.to_string(),
                key: format!("dev|{device}"),
            });
        }
        records.push((device, state, clean_streak, silent_windows));
    }
    Ok(HealthExport { cfg, records })
}

// ---------------------------------------------------------------------------
// interner — process-global symbol table warm start

/// Render the interner snapshot (id order).
pub(crate) fn render_interner(strings: &[&str]) -> String {
    let mut out = String::new();
    for s in strings {
        out.push_str(&format!("sym|{}\n", escape(s)));
    }
    out
}

/// Parse [`render_interner`]'s output, re-interning every string in order.
/// Returns the number of symbols interned.
pub(crate) fn parse_interner(artifact: &str, content: &str) -> Result<usize, StoreError> {
    let mut n = 0;
    for (i, line) in content.lines().enumerate() {
        let ln = i + 1;
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() != 2 || fields[0] != "sym" {
            return Err(bad(artifact, ln, "bad symbol line"));
        }
        Symbol::intern(&pstr(artifact, ln, fields[1])?);
        n += 1;
    }
    Ok(n)
}
