//! **behaviot-store** — durable, versioned, schema-validated snapshots of
//! every model the BehavIoT pipeline produces.
//!
//! A snapshot is a directory of small pipe-separated text artifacts plus a
//! `MANIFEST` that pins the format version and, in v2, the byte length and
//! FxHash64 content hash of every artifact. The store guarantees:
//!
//! * **Atomicity** — artifact files are **content-addressed**
//!   (`<stem>-<fxhash64>.<ext>`), so a save never overwrites a file the
//!   committed manifest references with different bytes; each file is
//!   written to a `.tmp` sibling, fsynced, and `rename`d into place, the
//!   directory is fsynced, and only then is the manifest renamed in — the
//!   manifest rename is the *sole* commit point, so a crash (or power
//!   loss) at any instant mid-save leaves the previous snapshot loadable.
//!   Files from superseded snapshots are swept only after commit, and the
//!   sweep touches nothing but the store's own naming scheme.
//! * **Replay invariance** — floats use shortest-round-trip canonical text
//!   ([`format::fmt_f64`]), collections are sorted before rendering, and
//!   the PFSM is re-inferred deterministically from its persisted training
//!   traces. A restored [`behaviot::Monitor`] therefore continues the exact
//!   deviation stream of the uninterrupted run (`tests/store_replay.rs`).
//! * **Corruption detection, never panics** — any byte flip, insertion, or
//!   truncation in any artifact surfaces as a typed [`StoreError`] whose
//!   [`StoreError::artifact`] pinpoints the failing artifact (v2 manifests
//!   store length + hash; parses are fully validated).
//! * **O(changed-devices) checkpoints** — [`ModelStore::checkpoint`]
//!   re-renders only the per-device artifacts whose device is in the
//!   caller's changed set, reusing the previous manifest entries (and
//!   on-disk files) for the rest.
//!
//! The store supersedes the ad-hoc TSV helpers in `behaviot::persist`
//! (now deprecated): those covered only the periodic inventory and system
//! traces, silently accepted duplicate records, and had no integrity
//! metadata or atomicity story.

#![warn(missing_docs)]

pub mod format;

mod artifacts;

use behaviot::{BehavIoT, HealthExport, Monitor, MonitorConfig, MonitorState, SystemModel};
use behaviot_intern::{FxHashSet, FxHasher, Symbol};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::hash::Hasher;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// Current snapshot format version. v1 lacked the per-artifact byte length
/// and content hash in the manifest (same artifact encodings); v2 snapshots
/// detect any single-byte corruption before parsing.
pub const FORMAT_VERSION: u32 = 2;

const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_MAGIC: &str = "behaviot-store";

/// Everything that can go wrong saving or loading a snapshot. Loads never
/// panic: corrupted, truncated, or hand-mangled snapshots all surface here,
/// and [`StoreError::artifact`] names the failing artifact when one is
/// known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem error reading or writing an artifact.
    Io {
        /// Artifact (or `MANIFEST`) being accessed.
        artifact: String,
        /// Stringified OS error.
        detail: String,
    },
    /// The manifest itself is malformed.
    BadManifest {
        /// 1-based manifest line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The manifest declares a format version this build cannot read.
    BadVersion(u32),
    /// A required artifact is absent from the manifest.
    MissingArtifact {
        /// The missing artifact's name.
        artifact: String,
    },
    /// An artifact's bytes disagree with the manifest's recorded length or
    /// content hash (v2 only).
    HashMismatch {
        /// The corrupted artifact.
        artifact: String,
    },
    /// A record inside an artifact failed validation.
    BadRecord {
        /// The artifact containing the record.
        artifact: String,
        /// 1-based line within the artifact.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// Two records claim the same logical key (model group, activity,
    /// device) — last-wins would mask a corrupted or hand-edited snapshot,
    /// so this is a hard error.
    Duplicate {
        /// The artifact containing the duplicate.
        artifact: String,
        /// The duplicated key.
        key: String,
    },
    /// A model to be saved contains a non-finite float — it is already
    /// corrupt in memory and must not be persisted.
    NonFinite {
        /// The artifact being rendered.
        artifact: String,
    },
}

impl StoreError {
    /// The artifact this error pinpoints, when one is known.
    pub fn artifact(&self) -> Option<&str> {
        match self {
            StoreError::Io { artifact, .. }
            | StoreError::MissingArtifact { artifact }
            | StoreError::HashMismatch { artifact }
            | StoreError::BadRecord { artifact, .. }
            | StoreError::Duplicate { artifact, .. }
            | StoreError::NonFinite { artifact } => Some(artifact),
            StoreError::BadManifest { .. } | StoreError::BadVersion(_) => None,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { artifact, detail } => write!(f, "io error on {artifact}: {detail}"),
            StoreError::BadManifest { line, reason } => {
                write!(f, "bad manifest (line {line}): {reason}")
            }
            StoreError::BadVersion(v) => write!(f, "unsupported snapshot format version {v}"),
            StoreError::MissingArtifact { artifact } => {
                write!(f, "required artifact {artifact} missing from manifest")
            }
            StoreError::HashMismatch { artifact } => {
                write!(f, "artifact {artifact} failed its integrity check")
            }
            StoreError::BadRecord {
                artifact,
                line,
                reason,
            } => write!(f, "bad record in {artifact} (line {line}): {reason}"),
            StoreError::Duplicate { artifact, key } => {
                write!(f, "duplicate key {key} in {artifact}")
            }
            StoreError::NonFinite { artifact } => {
                write!(f, "non-finite value while rendering {artifact}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(artifact: &str, e: std::io::Error) -> StoreError {
    StoreError::Io {
        artifact: artifact.to_string(),
        detail: e.to_string(),
    }
}

/// What to persist in a snapshot. The device models are mandatory; the
/// system model, monitor state, metrics text, and interner table are
/// opt-in.
///
/// The interner is opt-in (default off in struct literals via
/// `include_interner: false`) because the process-global symbol table grows
/// monotonically: two otherwise-identical saves taken at different points
/// of one process would differ in the interner artifact alone.
pub struct SnapshotSpec<'a> {
    /// The trained device behavior models.
    pub models: &'a BehavIoT,
    /// The system behavior model, if one was inferred.
    pub system: Option<&'a SystemModel>,
    /// Streaming-monitor configuration + exported state, for kill/restore.
    pub monitor: Option<(&'a MonitorConfig, MonitorState)>,
    /// Fleet health registry checkpoint, so restored monitors resume the
    /// per-device hysteresis state instead of re-learning it.
    pub health: Option<HealthExport>,
    /// Opaque metrics text (e.g. a JSONL metrics dump). Stored
    /// hash-protected but never parsed.
    pub metrics_jsonl: Option<&'a str>,
    /// Also snapshot the process-global interner (warm-start aid).
    pub include_interner: bool,
}

impl<'a> SnapshotSpec<'a> {
    /// Minimal spec: just the device models.
    pub fn new(models: &'a BehavIoT) -> Self {
        Self {
            models,
            system: None,
            monitor: None,
            health: None,
            metrics_jsonl: None,
            include_interner: false,
        }
    }
}

/// Everything a snapshot contained, reconstructed.
pub struct LoadedSnapshot {
    /// Manifest format version the snapshot was written with.
    pub version: u32,
    /// The device behavior models.
    pub models: BehavIoT,
    /// The system model, if persisted.
    pub system: Option<SystemModel>,
    /// Monitor configuration, if persisted.
    pub monitor_cfg: Option<MonitorConfig>,
    /// Monitor streaming state, if persisted.
    pub monitor_state: Option<MonitorState>,
    /// Fleet health registry checkpoint, if persisted.
    pub health: Option<HealthExport>,
    /// Opaque metrics text, if persisted.
    pub metrics_jsonl: Option<String>,
}

impl LoadedSnapshot {
    /// Rebuild the streaming monitor, continuing exactly where the saved
    /// one left off. `None` when the snapshot carried no system model or no
    /// monitor artifact.
    pub fn into_monitor(self) -> Option<Monitor> {
        let system = self.system?;
        let cfg = self.monitor_cfg?;
        let state = self.monitor_state.unwrap_or_default();
        let mut monitor = Monitor::restore(self.models, system, cfg, state);
        if let Some(health) = self.health {
            monitor.restore_health(health);
        }
        Some(monitor)
    }
}

/// One artifact ready to hit the disk (or reused from the old manifest).
struct Entry {
    name: String,
    file: String,
    hash: u64,
    bytes: u64,
}

/// The snapshot directory handle.
pub struct ModelStore {
    root: PathBuf,
}

fn hash_bytes(b: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(b);
    h.finish()
}

/// Classification of a manifest artifact name. Unknown names are an error:
/// accepting them would let a corrupted *name* silently drop an optional
/// artifact from the load.
enum ArtifactKind {
    PeriodicCfg,
    PeriodicDevice(Ipv4Addr),
    UserCfg,
    UserDevice(Ipv4Addr),
    Names,
    System,
    Monitor,
    Health,
    Interner,
    Metrics,
}

fn classify_artifact(name: &str) -> Option<ArtifactKind> {
    match name {
        "periodic.cfg" => Some(ArtifactKind::PeriodicCfg),
        "user.cfg" => Some(ArtifactKind::UserCfg),
        "names" => Some(ArtifactKind::Names),
        "system" => Some(ArtifactKind::System),
        "monitor" => Some(ArtifactKind::Monitor),
        "health" => Some(ArtifactKind::Health),
        "interner" => Some(ArtifactKind::Interner),
        "metrics" => Some(ArtifactKind::Metrics),
        _ => {
            if let Some(ip) = name.strip_prefix("periodic@") {
                return ip.parse().ok().map(ArtifactKind::PeriodicDevice);
            }
            if let Some(ip) = name.strip_prefix("user@") {
                return ip.parse().ok().map(ArtifactKind::UserDevice);
            }
            None
        }
    }
}

/// The on-disk stem + extension an artifact's files use (the content hash
/// goes between them: `<stem>-<fxhash64:016x>.<ext>`).
fn artifact_stem_ext(name: &str) -> (&str, &str) {
    match name {
        "periodic.cfg" => ("periodic", "cfg"),
        "user.cfg" => ("user", "cfg"),
        "metrics" => (name, "jsonl"),
        _ => (name, "tsv"),
    }
}

/// The logical artifact a store-written file name belongs to: either the
/// current content-addressed form `<stem>-<16 hex>.<ext>` or the pre-hash
/// fixed form `<stem>.<ext>`. `None` for anything the store would never
/// have written itself.
fn file_artifact_name(file: &str) -> Option<String> {
    let (mut stem, ext) = file.rsplit_once('.')?;
    if let Some((s, h)) = stem.rsplit_once('-') {
        if h.len() == 16 && h.bytes().all(|b| b.is_ascii_hexdigit()) {
            stem = s;
        }
    }
    let name = if ext == "cfg" {
        format!("{stem}.cfg")
    } else {
        stem.to_string()
    };
    classify_artifact(&name)?;
    (artifact_stem_ext(&name) == (stem, ext)).then_some(name)
}

impl ModelStore {
    /// Open (creating if needed) a snapshot directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err("<root>", e))?;
        Ok(Self { root })
    }

    /// The snapshot directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Write a full v2 snapshot (every artifact re-rendered).
    pub fn save(&self, spec: &SnapshotSpec<'_>) -> Result<(), StoreError> {
        self.write_snapshot(spec, FORMAT_VERSION, None)
    }

    /// Write a full snapshot in the *previous* (v1) manifest format — no
    /// per-artifact length/hash. Exists so the v1→v2 migration path stays
    /// executable and regression-tested; new code should use
    /// [`Self::save`].
    pub fn save_v1(&self, spec: &SnapshotSpec<'_>) -> Result<(), StoreError> {
        self.write_snapshot(spec, 1, None)
    }

    /// Incremental v2 snapshot: per-device artifacts whose device symbol
    /// (`Symbol::intern_ipv4`) is *not* in `changed` are carried over from
    /// the previous manifest without being re-rendered, re-hashed, or
    /// re-written — the save cost is O(changed devices + globals), not
    /// O(fleet). Devices present in `changed` but absent from the spec are
    /// dropped from the manifest. Global artifacts are always re-rendered.
    pub fn checkpoint(
        &self,
        spec: &SnapshotSpec<'_>,
        changed: &FxHashSet<Symbol>,
    ) -> Result<(), StoreError> {
        self.write_snapshot(spec, FORMAT_VERSION, Some(changed))
    }

    fn write_snapshot(
        &self,
        spec: &SnapshotSpec<'_>,
        version: u32,
        changed: Option<&FxHashSet<Symbol>>,
    ) -> Result<(), StoreError> {
        let mut span = behaviot_obs::span!("store.save", version = version);
        let m = behaviot_obs::metrics();
        m.counter("store.saves").inc();

        // Previous manifest entries, reusable only for v2→v2 checkpoints.
        let old: HashMap<String, Entry> = match changed {
            Some(_) => self
                .read_manifest_entries()
                .ok()
                .filter(|(v, _)| *v == FORMAT_VERSION)
                .map(|(_, entries)| entries.into_iter().map(|e| (e.name.clone(), e)).collect())
                .unwrap_or_default(),
            None => HashMap::new(),
        };
        let reusable = |device: Ipv4Addr, name: &str| -> Option<&Entry> {
            let changed = changed?;
            if changed.contains(&Symbol::intern_ipv4(device)) {
                return None;
            }
            old.get(name)
        };

        let mut entries: Vec<Entry> = Vec::new();
        let mut written = 0u64;
        let mut reused = 0u64;

        // -- global artifacts (always re-rendered) -----------------------
        let models = spec.models;
        let pc = artifacts::render_periodic_cfg(
            "periodic.cfg",
            models.periodic.config(),
            models.periodic.train_coverage,
        )?;
        entries.push(self.put("periodic.cfg", &pc)?);
        let uc = artifacts::render_user_cfg("user.cfg", models.user.confidence_threshold())?;
        entries.push(self.put("user.cfg", &uc)?);
        entries.push(self.put("names", &artifacts::render_names(&models.names))?);
        written += 3;
        if let Some(system) = spec.system {
            let body = artifacts::render_system("system", system)?;
            entries.push(self.put("system", &body)?);
            written += 1;
        }
        if let Some((cfg, state)) = &spec.monitor {
            let body = artifacts::render_monitor("monitor", cfg, state)?;
            entries.push(self.put("monitor", &body)?);
            written += 1;
        }
        if let Some(health) = &spec.health {
            let body = artifacts::render_health("health", health)?;
            entries.push(self.put("health", &body)?);
            written += 1;
        }
        if let Some(metrics_text) = spec.metrics_jsonl {
            entries.push(self.put("metrics", metrics_text)?);
            written += 1;
        }
        if spec.include_interner {
            let strings = behaviot_intern::export_global();
            let body = artifacts::render_interner(&strings);
            entries.push(self.put("interner", &body)?);
            written += 1;
        }

        // -- per-device artifacts (reused when unchanged) ----------------
        let mut periodic_by_dev: std::collections::BTreeMap<Ipv4Addr, Vec<&behaviot::PeriodicModel>> =
            std::collections::BTreeMap::new();
        for pm in models.periodic.iter() {
            periodic_by_dev.entry(pm.device).or_default().push(pm);
        }
        for (device, mut dev_models) in periodic_by_dev {
            dev_models.sort_by_key(|pm| (pm.destination, pm.proto));
            let name = format!("periodic@{device}");
            if let Some(e) = reusable(device, &name) {
                entries.push(Entry::clone_of(e));
                reused += 1;
                continue;
            }
            let body = artifacts::render_periodic_device(&name, &dev_models)?;
            let e = self.put(&name, &body)?;
            entries.push(e);
            written += 1;
        }
        for (device, list) in models.user.device_models() {
            let name = format!("user@{device}");
            if let Some(e) = reusable(device, &name) {
                entries.push(Entry::clone_of(e));
                reused += 1;
                continue;
            }
            let body = artifacts::render_user_device(&name, list)?;
            let e = self.put(&name, &body)?;
            entries.push(e);
            written += 1;
        }

        // -- manifest (last: its rename is the sole commit point) --------
        // Make every staged artifact durable *before* the commit: a power
        // loss after the manifest rename must not be able to lose an
        // artifact rename that the manifest now depends on.
        self.sync_dir().map_err(|e| io_err("<root>", e))?;
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let mut manifest = format!("{MANIFEST_MAGIC}|v{version}\n");
        for e in &entries {
            if version >= 2 {
                manifest.push_str(&format!(
                    "artifact|{}|{}|{:016x}|{}\n",
                    e.name, e.file, e.hash, e.bytes
                ));
            } else {
                manifest.push_str(&format!("artifact|{}|{}\n", e.name, e.file));
            }
        }
        // v2: the manifest protects the artifacts, and this line protects
        // the manifest — without it a byte flip inside an artifact *name*
        // (say, one digit of a device address) could redirect a hash check
        // at intact bytes and load the wrong model silently.
        if version >= 2 {
            manifest.push_str(&format!("check|{:016x}\n", hash_bytes(manifest.as_bytes())));
        }
        self.write_atomic(MANIFEST_FILE, manifest.as_bytes())
            .map_err(|e| io_err(MANIFEST_FILE, e))?;
        self.sync_dir().map_err(|e| io_err("<root>", e))?;

        // Best-effort cleanup of files from superseded snapshots (e.g. a
        // device dropped between checkpoints, or a changed artifact's old
        // content-addressed file). Strictly after commit, and failure is
        // not an error: the manifest already excludes them.
        self.sweep_orphans(&entries);

        m.counter("store.artifacts_written").add(written);
        m.counter("store.artifacts_reused").add(reused);
        span.record("written", written as usize);
        span.record("reused", reused as usize);
        Ok(())
    }

    /// Stage one artifact under its content-addressed file name, returning
    /// its manifest entry. Because the name embeds the content hash, a
    /// file referenced by the committed manifest is only ever overwritten
    /// with byte-identical content — the staged file cannot corrupt the
    /// previous snapshot.
    fn put(&self, name: &str, body: &str) -> Result<Entry, StoreError> {
        let hash = hash_bytes(body.as_bytes());
        let (stem, ext) = artifact_stem_ext(name);
        let file = format!("{stem}-{hash:016x}.{ext}");
        self.write_atomic(&file, body.as_bytes())
            .map_err(|e| io_err(name, e))?;
        Ok(Entry {
            name: name.to_string(),
            file,
            hash,
            bytes: body.len() as u64,
        })
    }

    /// Write to a `.tmp` sibling, fsync, and rename into place, so `file`
    /// is only ever observed whole — even across power loss.
    fn write_atomic(&self, file: &str, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = self.root.join(format!("{file}.tmp"));
        let dst = self.root.join(file);
        let mut f = fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, &dst)
    }

    /// Fsync the snapshot directory itself, making completed renames
    /// durable. No-op where directories cannot be opened for sync.
    fn sync_dir(&self) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            fs::File::open(&self.root)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            Ok(())
        }
    }

    /// Remove files from superseded snapshots. Runs only after the new
    /// manifest has committed, and deletes *only* unreferenced files
    /// matching the store's own naming scheme ([`file_artifact_name`], or
    /// a `.tmp` staging sibling of one) — a store opened on a directory
    /// containing foreign files never touches them.
    fn sweep_orphans(&self, entries: &[Entry]) {
        let referenced: std::collections::HashSet<&str> =
            entries.iter().map(|e| e.file.as_str()).collect();
        let Ok(dir) = fs::read_dir(&self.root) else {
            return;
        };
        for d in dir.flatten() {
            let fname = d.file_name();
            let Some(fname) = fname.to_str() else { continue };
            if fname == MANIFEST_FILE || referenced.contains(fname) {
                continue;
            }
            let base = fname.strip_suffix(".tmp").unwrap_or(fname);
            let ours = base == MANIFEST_FILE && base != fname;
            if ours || file_artifact_name(base).is_some() {
                let _ = fs::remove_file(d.path());
            }
        }
    }

    /// Parse the manifest into (version, entries). v1 entries carry zeroed
    /// hash/length (integrity checking is skipped for them on load).
    fn read_manifest_entries(&self) -> Result<(u32, Vec<Entry>), StoreError> {
        let raw = fs::read_to_string(self.root.join(MANIFEST_FILE))
            .map_err(|e| io_err(MANIFEST_FILE, e))?;
        let Some(header) = raw.lines().next() else {
            return Err(StoreError::BadManifest {
                line: 1,
                reason: "empty manifest".to_string(),
            });
        };
        let version = match header.split_once('|') {
            Some((MANIFEST_MAGIC, v)) => {
                let n: u32 = v
                    .strip_prefix('v')
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| StoreError::BadManifest {
                        line: 1,
                        reason: "bad version field".to_string(),
                    })?;
                if n == 0 || n > FORMAT_VERSION {
                    return Err(StoreError::BadVersion(n));
                }
                n
            }
            _ => {
                return Err(StoreError::BadManifest {
                    line: 1,
                    reason: "bad magic".to_string(),
                })
            }
        };
        // v2 manifests end with a `check|<hash>` line over everything
        // before it: the artifact hashes protect the artifact bytes, this
        // protects the manifest itself (artifact names included).
        let body: &str = if version >= 2 {
            let n_lines = raw.lines().count();
            let bad_check = || StoreError::BadManifest {
                line: n_lines,
                reason: "missing or malformed integrity check line".to_string(),
            };
            let trimmed = raw.strip_suffix('\n').unwrap_or(&raw);
            let (prefix, last) = trimmed
                .rfind('\n')
                .map(|p| (&raw[..p + 1], &trimmed[p + 1..]))
                .ok_or_else(bad_check)?;
            let expect = last
                .strip_prefix("check|")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or_else(bad_check)?;
            if hash_bytes(prefix.as_bytes()) != expect {
                return Err(StoreError::BadManifest {
                    line: n_lines,
                    reason: "manifest failed its integrity check".to_string(),
                });
            }
            prefix
        } else {
            &raw
        };
        let mut entries = Vec::new();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (i, line) in body.lines().enumerate().skip(1) {
            let ln = i + 1;
            let fields: Vec<&str> = line.split('|').collect();
            let want = if version >= 2 { 5 } else { 3 };
            if fields.len() != want || fields[0] != "artifact" {
                return Err(StoreError::BadManifest {
                    line: ln,
                    reason: "bad artifact line".to_string(),
                });
            }
            let name = fields[1].to_string();
            if classify_artifact(&name).is_none() {
                return Err(StoreError::BadManifest {
                    line: ln,
                    reason: format!("unknown artifact name {name}"),
                });
            }
            if !seen.insert(name.clone()) {
                return Err(StoreError::BadManifest {
                    line: ln,
                    reason: format!("duplicate artifact {name}"),
                });
            }
            // The file field must be a plain name inside the store root —
            // a mangled (v1: unchecked) manifest must not be able to read
            // files elsewhere on disk or shadow the manifest itself.
            let file = fields[2];
            if file.is_empty()
                || file == MANIFEST_FILE
                || file.contains('/')
                || file.contains('\\')
                || file.contains("..")
            {
                return Err(StoreError::BadManifest {
                    line: ln,
                    reason: format!("bad artifact file name {file}"),
                });
            }
            let (hash, bytes) = if version >= 2 {
                let hash = u64::from_str_radix(fields[3], 16).map_err(|_| {
                    StoreError::BadManifest {
                        line: ln,
                        reason: "bad content hash".to_string(),
                    }
                })?;
                let bytes: u64 =
                    fields[4]
                        .parse()
                        .map_err(|_| StoreError::BadManifest {
                            line: ln,
                            reason: "bad byte count".to_string(),
                        })?;
                (hash, bytes)
            } else {
                (0, 0)
            };
            entries.push(Entry {
                name,
                file: fields[2].to_string(),
                hash,
                bytes,
            });
        }
        Ok((version, entries))
    }

    /// Load and validate the snapshot. Every failure mode — missing files,
    /// corrupt bytes, malformed records, duplicate keys — returns a typed
    /// [`StoreError`]; this function never panics on untrusted input.
    pub fn load(&self) -> Result<LoadedSnapshot, StoreError> {
        let mut span = behaviot_obs::span!("store.load");
        behaviot_obs::metrics().counter("store.loads").inc();
        let (version, entries) = self.read_manifest_entries()?;
        span.record("version", version as usize);
        span.record("artifacts", entries.len());

        // Read + integrity-check every artifact up front: a load either
        // sees a fully consistent snapshot or fails.
        let mut contents: HashMap<String, String> = HashMap::new();
        for e in &entries {
            let raw = fs::read(self.root.join(&e.file)).map_err(|err| io_err(&e.name, err))?;
            if version >= 2 && (raw.len() as u64 != e.bytes || hash_bytes(&raw) != e.hash) {
                return Err(StoreError::HashMismatch {
                    artifact: e.name.clone(),
                });
            }
            let text = String::from_utf8(raw).map_err(|_| StoreError::BadRecord {
                artifact: e.name.clone(),
                line: 0,
                reason: "artifact is not valid UTF-8".to_string(),
            })?;
            contents.insert(e.name.clone(), text);
        }
        for required in ["periodic.cfg", "user.cfg", "names"] {
            if !contents.contains_key(required) {
                return Err(StoreError::MissingArtifact {
                    artifact: required.to_string(),
                });
            }
        }

        // Interner warm start first, so symbol ids in a fresh process are
        // assigned in snapshot order before any model parsing interns.
        if let Some(body) = contents.get("interner") {
            artifacts::parse_interner("interner", body)?;
        }

        let (pcfg, coverage) = artifacts::parse_periodic_cfg("periodic.cfg", &contents["periodic.cfg"])?;
        let confidence = artifacts::parse_user_cfg("user.cfg", &contents["user.cfg"])?;
        let names = artifacts::parse_names("names", &contents["names"])?;

        let mut periodic_models = Vec::new();
        let mut user_models: Vec<(Ipv4Addr, Vec<(Symbol, behaviot_forest::RandomForest)>)> =
            Vec::new();
        for e in &entries {
            match classify_artifact(&e.name) {
                Some(ArtifactKind::PeriodicDevice(ip)) => {
                    periodic_models.extend(artifacts::parse_periodic_device(
                        &e.name,
                        ip,
                        &contents[&e.name],
                    )?);
                }
                Some(ArtifactKind::UserDevice(ip)) => {
                    user_models.push((ip, artifacts::parse_user_device(&e.name, &contents[&e.name])?));
                }
                _ => {}
            }
        }
        let periodic = behaviot::PeriodicModelSet::from_models(periodic_models, pcfg, coverage)
            .map_err(|(device, dest, proto)| StoreError::Duplicate {
                artifact: format!("periodic@{device}"),
                key: format!("{dest}|{proto}"),
            })?;
        let user = behaviot::UserActionModels::from_parts(user_models, confidence).map_err(
            |device| StoreError::Duplicate {
                artifact: format!("user@{device}"),
                key: device.to_string(),
            },
        )?;

        let system = match contents.get("system") {
            Some(body) => Some(artifacts::parse_system("system", body)?),
            None => None,
        };
        let (monitor_cfg, monitor_state) = match contents.get("monitor") {
            Some(body) => {
                let (cfg, state) = artifacts::parse_monitor("monitor", body)?;
                (Some(cfg), Some(state))
            }
            None => (None, None),
        };
        let health = match contents.get("health") {
            Some(body) => Some(artifacts::parse_health("health", body)?),
            None => None,
        };

        Ok(LoadedSnapshot {
            version,
            models: BehavIoT {
                periodic,
                user,
                names,
            },
            system,
            monitor_cfg,
            monitor_state,
            health,
            metrics_jsonl: contents.remove("metrics"),
        })
    }
}

impl Entry {
    fn clone_of(e: &Entry) -> Entry {
        Entry {
            name: e.name.clone(),
            file: e.file.clone(),
            hash: e.hash,
            bytes: e.bytes,
        }
    }
}
