//! Round-trip properties for every persisted artifact: `save → load →
//! save` must be **byte-equal** for arbitrary (valid) models — including
//! empty model sets, 21-dimension clusters, subnormal and negative-zero
//! floats. Built in the style of `crates/cluster/tests/parity.rs`: models
//! are constructed directly through the `from_parts` validation APIs (no
//! training), so the generated space is much wider than anything the
//! trainer produces.

use behaviot::{
    BehavIoT, HealthConfig, HealthExport, HealthState, MonitorConfig, MonitorState, PeriodicModel,
    PeriodicModelSet, PeriodicTrainConfig, SystemModel, SystemModelConfig, UserActionModels,
};
use behaviot_cluster::{DbscanModel, Standardizer};
use behaviot_forest::{DecisionTree, NodeSpec, RandomForest};
use behaviot_intern::Symbol;
use behaviot_net::Proto;
use behaviot_store::{format, ModelStore, SnapshotSpec, StoreError};
use proptest::prelude::*;
use std::collections::HashMap;
use std::fs;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "behaviot-store-rt-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn snapshot_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

/// Any finite f64 from raw bits — keeps subnormals, -0.0, and extreme
/// exponents; folds inf/NaN onto an always-finite fallback.
fn finite(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_finite() {
        v
    } else {
        (bits >> 12) as f64 - 1e15
    }
}

/// Finite and strictly positive (periods, stds, eps).
fn positive(bits: u64) -> f64 {
    let v = finite(bits).abs();
    if v > 0.0 {
        v
    } else {
        1.0
    }
}

fn prob(bits: u64) -> f64 {
    (bits % 1_000_001) as f64 / 1_000_000.0
}

fn periodic_model(
    device: Ipv4Addr,
    dest: &str,
    proto: Proto,
    dim: usize,
    n_cores: usize,
    seeds: &[u64],
) -> PeriodicModel {
    let s = |i: usize| seeds[i % seeds.len()].wrapping_mul(i as u64 | 1);
    let std = Standardizer::from_params(
        (0..dim).map(|i| finite(s(i))).collect(),
        (0..dim).map(|i| positive(s(i + dim))).collect(),
    )
    .unwrap();
    let cores: Vec<f64> = (0..n_cores * dim).map(|i| finite(s(i + 7))).collect();
    let core_orig: Vec<u32> = (0..n_cores as u32).collect();
    let cluster =
        DbscanModel::from_parts(positive(s(3)), dim, cores, core_orig, vec![0, n_cores]).unwrap();
    let periods: Vec<f64> = (0..1 + seeds.len() % 3).map(|i| positive(s(i + 11))).collect();
    PeriodicModel::from_parts(
        device,
        Symbol::intern(dest),
        proto,
        periods,
        seeds.len(),
        std,
        cluster,
    )
    .unwrap()
}

fn forest(n_features: usize, seeds: &[u64]) -> RandomForest {
    let trees: Vec<DecisionTree> = (0..1 + seeds.len() % 3)
        .map(|t| {
            let s = seeds[t % seeds.len()];
            let nodes = vec![
                NodeSpec::Split {
                    feature: (s as usize) % n_features,
                    threshold: finite(s.rotate_left(17)),
                    left: 1,
                    right: 2,
                },
                NodeSpec::Leaf { prob: prob(s) },
                NodeSpec::Leaf {
                    prob: prob(s.rotate_left(31)),
                },
            ];
            DecisionTree::from_nodes(nodes, n_features).unwrap()
        })
        .collect();
    let oob = if seeds[0].is_multiple_of(2) {
        Some(prob(seeds[0]))
    } else {
        None
    };
    RandomForest::from_trees(trees, oob).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The float codec is bit-exact for every finite f64 (incl. -0.0 and
    /// subnormals) and refuses every non-finite one — the foundation of
    /// byte-stable snapshots.
    #[test]
    fn fmt_parse_f64_bit_exact(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        match format::fmt_f64(v) {
            Some(text) => {
                prop_assert!(v.is_finite());
                let back = format::parse_f64(&text).unwrap();
                prop_assert_eq!(back.to_bits(), v.to_bits(), "{}", text);
            }
            None => prop_assert!(!v.is_finite()),
        }
        // Forcing the exponent to all-ones makes it non-finite: always
        // rejected on the way out.
        let nf = f64::from_bits(bits | 0x7ff0_0000_0000_0000);
        prop_assert!(format::fmt_f64(nf).is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// save → load → save is byte-equal for arbitrary valid model sets:
    /// varying device counts (including zero models), cluster dimensions
    /// (21 included), forest shapes, optional system/monitor/metrics
    /// artifacts, and full-spectrum float values.
    #[test]
    fn snapshot_roundtrip_byte_equal(
        seeds in proptest::collection::vec(any::<u64>(), 1..12),
        n_devices in 0usize..4,
        dim_sel in 0usize..4,
        with_system in any::<bool>(),
        with_monitor in any::<bool>(),
        with_health in any::<bool>(),
        with_metrics in any::<bool>(),
    ) {
        // dim 21 (the paper's feature count) every 4th case.
        let dim = if dim_sel == 0 { 21 } else { dim_sel * 3 };
        let mut models = Vec::new();
        let mut users = Vec::new();
        let mut names = HashMap::new();
        for d in 0..n_devices {
            let ip = Ipv4Addr::new(10, 0, 0, 1 + d as u8);
            // A trailing \r is the nastiest string case: unescaped it would
            // be silently eaten by `str::lines` on load.
            names.insert(ip, format!("dev-{d}\r"));
            let n_cores = (seeds.len() + d) % 3;
            models.push(periodic_model(ip, &format!("p{d}.example|.com"), Proto::Tcp, dim, n_cores, &seeds));
            if d % 2 == 0 {
                models.push(periodic_model(ip, &format!("q{d}.example.com"), Proto::Udp, dim, 1, &seeds));
            }
            if d % 2 == 1 {
                users.push((ip, vec![
                    (Symbol::intern("on_off"), forest(dim, &seeds)),
                    (Symbol::intern("mo%tion"), forest(dim, &seeds)),
                ]));
            }
        }
        let periodic = PeriodicModelSet::from_models(
            models,
            PeriodicTrainConfig::default(),
            prob(seeds[0]),
        ).unwrap();
        let user = UserActionModels::from_parts(users, prob(seeds[seeds.len() - 1])).unwrap();
        let behaviot = BehavIoT { periodic, user, names };

        let system = SystemModel::from_traces(
            &[vec!["dev-1:on_off".to_string()], vec!["dev-1:mo%tion\r".to_string(), "dev-1:on_off".to_string()]],
            &SystemModelConfig::default(),
        );
        let state = MonitorState {
            last_seen: (0..n_devices)
                .map(|d| {
                    let ip = Ipv4Addr::new(10, 0, 0, 1 + d as u8);
                    ((ip, Symbol::intern(&format!("p{d}.example|.com")), Proto::Tcp), finite(seeds[d % seeds.len()]))
                })
                .collect(),
            absence_flagged: (0..n_devices / 2).map(|d| Ipv4Addr::new(10, 0, 0, 1 + d as u8)).collect(),
            long_flagged: vec![(Symbol::intern("a:x\r"), Symbol::intern("b:\r\ny"))],
            windows: n_devices as u64,
        };
        let cfg = MonitorConfig::default();
        let health = HealthExport {
            cfg: HealthConfig {
                degrade_drop_frac: prob(seeds[0]),
                recover_after: (seeds[0] % 5) as u32,
                stale_after: 1 + (seeds[0] % 7) as u32,
            },
            records: vec![
                (Symbol::intern("cam|era\r"), HealthState::Stale, 0, (seeds[0] % 9) as u32),
                (Symbol::intern("plug"), HealthState::Degraded, 2, 0),
            ],
        };
        let spec = SnapshotSpec {
            models: &behaviot,
            system: with_system.then_some(&system),
            monitor: with_monitor.then_some((&cfg, state)),
            health: with_health.then_some(health),
            metrics_jsonl: with_metrics.then_some("{\"counter\":{\"x\":1}}\n"),
            include_interner: false,
        };

        let dir_a = temp_dir("a");
        let store_a = ModelStore::open(&dir_a).unwrap();
        store_a.save(&spec).unwrap();
        let loaded = store_a.load().unwrap();
        prop_assert_eq!(loaded.models.periodic.len(), behaviot.periodic.len());
        prop_assert_eq!(loaded.system.is_some(), with_system);
        prop_assert_eq!(loaded.monitor_state.is_some(), with_monitor);
        prop_assert_eq!(loaded.health.is_some(), with_health);
        prop_assert_eq!(loaded.metrics_jsonl.is_some(), with_metrics);

        let dir_b = temp_dir("b");
        let store_b = ModelStore::open(&dir_b).unwrap();
        let respec = SnapshotSpec {
            models: &loaded.models,
            system: loaded.system.as_ref(),
            monitor: loaded.monitor_cfg.as_ref().map(|c| (c, loaded.monitor_state.clone().unwrap())),
            health: loaded.health.clone(),
            metrics_jsonl: loaded.metrics_jsonl.as_deref(),
            include_interner: false,
        };
        store_b.save(&respec).unwrap();
        prop_assert_eq!(snapshot_bytes(&dir_a), snapshot_bytes(&dir_b));
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A model already corrupt in memory (NaN/inf smuggled into a public
    /// field) is refused at save time with `NonFinite` naming the artifact
    /// — it never reaches the disk.
    #[test]
    fn non_finite_models_refused_on_save(bits in any::<u64>(), in_monitor in any::<bool>()) {
        let nf = f64::from_bits(bits | 0x7ff0_0000_0000_0000);
        let dir = temp_dir("nf");
        let store = ModelStore::open(&dir).unwrap();
        let mut periodic = PeriodicModelSet::from_models(
            vec![],
            PeriodicTrainConfig::default(),
            0.5,
        ).unwrap();
        let user = UserActionModels::from_parts(vec![], 0.9).unwrap();
        let err = if in_monitor {
            let behaviot = BehavIoT { periodic, user, names: HashMap::new() };
            let cfg = MonitorConfig::default();
            let state = MonitorState {
                last_seen: vec![((Ipv4Addr::new(10, 0, 0, 1), Symbol::intern("d.com"), Proto::Tcp), nf)],
                absence_flagged: vec![],
                long_flagged: vec![],
                windows: 0,
            };
            let spec = SnapshotSpec {
                monitor: Some((&cfg, state)),
                ..SnapshotSpec::new(&behaviot)
            };
            store.save(&spec).map(|_| ()).unwrap_err()
        } else {
            periodic.train_coverage = nf;
            let behaviot = BehavIoT { periodic, user, names: HashMap::new() };
            store.save(&SnapshotSpec::new(&behaviot)).map(|_| ()).unwrap_err()
        };
        let expected = if in_monitor { "monitor" } else { "periodic.cfg" };
        prop_assert_eq!(err.artifact(), Some(expected), "{:?}", err);
        match err {
            StoreError::NonFinite { .. } => {}
            other => panic!("expected NonFinite, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
