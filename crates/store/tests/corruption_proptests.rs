//! Corruption properties: mutate any byte of any snapshot file — flip,
//! insert, or truncate, via the same `behaviot_sim::faults::mutate_bytes`
//! primitive the fault-tolerance suite uses — and every `load` must return
//! a typed [`StoreError`], never panic, with the error pinpointing the
//! mutated artifact whenever the mutation hit an artifact file (the
//! manifest's per-artifact length + FxHash64 make that detection exact,
//! and the manifest's own trailing check line covers mutations of the
//! manifest itself, artifact names included).

use behaviot::{
    BehavIoT, MonitorConfig, MonitorState, PeriodicModel, PeriodicModelSet, PeriodicTrainConfig,
    SystemModel, SystemModelConfig, UserActionModels,
};
use behaviot_cluster::{DbscanModel, Standardizer};
use behaviot_forest::{DecisionTree, NodeSpec, RandomForest};
use behaviot_intern::Symbol;
use behaviot_net::Proto;
use behaviot_sim::faults::mutate_bytes;
use behaviot_store::{ModelStore, SnapshotSpec, StoreError};
use proptest::prelude::*;
use std::collections::HashMap;
use std::fs;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "behaviot-store-corrupt-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Small two-device fixture built straight through the `from_parts` APIs
/// (no training) so each proptest case is cheap. Every artifact kind is
/// present: periodic + user device files, all three global configs, the
/// system model, monitor state, and an opaque metrics blob.
fn fixture() -> (BehavIoT, SystemModel) {
    let dim = 3;
    let mk_periodic = |ip: Ipv4Addr, dest: &str, n_cores: usize| {
        let std = Standardizer::from_params(vec![0.5; dim], vec![1.25; dim]).unwrap();
        let cluster = DbscanModel::from_parts(
            0.75,
            dim,
            vec![1.5; n_cores * dim],
            (0..n_cores as u32).collect(),
            vec![0, n_cores],
        )
        .unwrap();
        PeriodicModel::from_parts(
            ip,
            Symbol::intern(dest),
            Proto::Tcp,
            vec![120.0, 3603.5],
            40,
            std,
            cluster,
        )
        .unwrap()
    };
    let a = Ipv4Addr::new(10, 0, 0, 1);
    let b = Ipv4Addr::new(10, 0, 0, 2);
    let periodic = PeriodicModelSet::from_models(
        vec![mk_periodic(a, "hb.cloud.com", 2), mk_periodic(b, "tele.cloud.com", 1)],
        PeriodicTrainConfig::default(),
        0.875,
    )
    .unwrap();
    let tree = DecisionTree::from_nodes(
        vec![
            NodeSpec::Split {
                feature: 1,
                threshold: 0.25,
                left: 1,
                right: 2,
            },
            NodeSpec::Leaf { prob: 0.125 },
            NodeSpec::Leaf { prob: 0.875 },
        ],
        dim,
    )
    .unwrap();
    let forest = RandomForest::from_trees(vec![tree], Some(0.75)).unwrap();
    let user = UserActionModels::from_parts(
        vec![(a, vec![(Symbol::intern("on_off"), forest)])],
        0.9,
    )
    .unwrap();
    let mut names = HashMap::new();
    names.insert(a, "plug".to_string());
    names.insert(b, "camera".to_string());
    let system = SystemModel::from_traces(
        &[vec!["plug:on_off".to_string()]],
        &SystemModelConfig::default(),
    );
    (
        BehavIoT {
            periodic,
            user,
            names,
        },
        system,
    )
}

fn save_fixture(store: &ModelStore, models: &BehavIoT, system: &SystemModel) {
    let cfg = MonitorConfig::default();
    let state = MonitorState {
        last_seen: vec![(
            (Ipv4Addr::new(10, 0, 0, 1), Symbol::intern("hb.cloud.com"), Proto::Tcp),
            1234.5,
        )],
        absence_flagged: vec![Ipv4Addr::new(10, 0, 0, 2)],
        long_flagged: vec![(Symbol::intern("plug:on_off"), Symbol::intern("FINAL"))],
    };
    let spec = SnapshotSpec {
        models,
        system: Some(system),
        monitor: Some((&cfg, state)),
        metrics_jsonl: Some("{\"counter\":{\"store.saves\":1}}\n"),
        include_interner: false,
    };
    store.save(&spec).unwrap();
}

/// Manifest artifact name for a snapshot file.
fn artifact_of(file: &str) -> String {
    file.strip_suffix(".tsv")
        .or_else(|| file.strip_suffix(".jsonl"))
        .unwrap_or(file)
        .to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flip / insert / truncate anywhere in any snapshot file: load always
    /// returns `StoreError` (no panic, no silent success), and when the
    /// mutation hit an artifact file the error names exactly that
    /// artifact.
    #[test]
    fn mutated_snapshot_always_errors(
        file_sel in any::<usize>(),
        kind in any::<u8>(),
        pos in any::<usize>(),
        value in any::<u8>(),
    ) {
        let (models, system) = fixture();
        let dir = temp_dir();
        let store = ModelStore::open(&dir).unwrap();
        save_fixture(&store, &models, &system);
        store.load().expect("pristine snapshot must load");

        let mut files: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        files.sort();
        let target = files[file_sel % files.len()].clone();
        let path = dir.join(&target);
        let mut bytes = fs::read(&path).unwrap();
        let before = bytes.clone();
        mutate_bytes(&mut bytes, kind, pos, value);
        prop_assert!(bytes != before, "mutation must change the file");
        fs::write(&path, &bytes).unwrap();

        let err = store.load().map(|_| ()).expect_err("corruption must not load");
        if target != "MANIFEST" {
            let expected = artifact_of(&target);
            prop_assert_eq!(
                err.artifact(),
                Some(expected.as_str()),
                "wrong artifact pinpointed for {} ({:?})",
                target,
                err
            );
            match err {
                StoreError::HashMismatch { .. } | StoreError::Io { .. } => {}
                other => panic!("artifact corruption should fail integrity, got {other:?}"),
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// A deleted artifact file errors (with the artifact named) instead of
/// panicking or loading partially.
#[test]
fn deleted_artifact_file_errors() {
    let (models, system) = fixture();
    let dir = temp_dir();
    let store = ModelStore::open(&dir).unwrap();
    save_fixture(&store, &models, &system);

    fs::remove_file(dir.join("names.tsv")).unwrap();
    let err = store.load().map(|_| ()).unwrap_err();
    assert_eq!(err.artifact(), Some("names"), "{err:?}");

    fs::remove_dir_all(&dir).unwrap();
}

/// An empty manifest is a `BadManifest`, not a panic; a missing manifest
/// is an `Io` on `MANIFEST`.
#[test]
fn degenerate_manifests_error() {
    let (models, system) = fixture();
    let dir = temp_dir();
    let store = ModelStore::open(&dir).unwrap();
    save_fixture(&store, &models, &system);

    fs::write(dir.join("MANIFEST"), b"").unwrap();
    assert!(matches!(
        store.load().map(|_| ()).unwrap_err(),
        StoreError::BadManifest { .. }
    ));

    fs::remove_file(dir.join("MANIFEST")).unwrap();
    let err = store.load().map(|_| ()).unwrap_err();
    assert_eq!(err.artifact(), Some("MANIFEST"));

    fs::remove_dir_all(&dir).unwrap();
}

/// A future format version is refused up front.
#[test]
fn future_version_refused() {
    let (models, system) = fixture();
    let dir = temp_dir();
    let store = ModelStore::open(&dir).unwrap();
    save_fixture(&store, &models, &system);

    let manifest = fs::read_to_string(dir.join("MANIFEST")).unwrap();
    let bumped = manifest.replacen("behaviot-store|v2", "behaviot-store|v99", 1);
    fs::write(dir.join("MANIFEST"), bumped).unwrap();
    assert_eq!(
        store.load().map(|_| ()).unwrap_err(),
        StoreError::BadVersion(99)
    );

    fs::remove_dir_all(&dir).unwrap();
}
