//! Corruption properties: mutate any byte of any snapshot file — flip,
//! insert, or truncate, via the same `behaviot_sim::faults::mutate_bytes`
//! primitive the fault-tolerance suite uses — and every `load` must return
//! a typed [`StoreError`], never panic, with the error pinpointing the
//! mutated artifact whenever the mutation hit an artifact file (the
//! manifest's per-artifact length + FxHash64 make that detection exact,
//! and the manifest's own trailing check line covers mutations of the
//! manifest itself, artifact names included).

use behaviot::{
    BehavIoT, HealthConfig, HealthExport, HealthState, MonitorConfig, MonitorState, PeriodicModel,
    PeriodicModelSet, PeriodicTrainConfig, SystemModel, SystemModelConfig, UserActionModels,
};
use behaviot_cluster::{DbscanModel, Standardizer};
use behaviot_forest::{DecisionTree, NodeSpec, RandomForest};
use behaviot_intern::Symbol;
use behaviot_net::Proto;
use behaviot_sim::faults::mutate_bytes;
use behaviot_store::{ModelStore, SnapshotSpec, StoreError};
use proptest::prelude::*;
use std::collections::HashMap;
use std::fs;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "behaviot-store-corrupt-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Small two-device fixture built straight through the `from_parts` APIs
/// (no training) so each proptest case is cheap. Every artifact kind is
/// present: periodic + user device files, all three global configs, the
/// system model, monitor state, and an opaque metrics blob.
fn fixture() -> (BehavIoT, SystemModel) {
    let dim = 3;
    let mk_periodic = |ip: Ipv4Addr, dest: &str, n_cores: usize| {
        let std = Standardizer::from_params(vec![0.5; dim], vec![1.25; dim]).unwrap();
        let cluster = DbscanModel::from_parts(
            0.75,
            dim,
            vec![1.5; n_cores * dim],
            (0..n_cores as u32).collect(),
            vec![0, n_cores],
        )
        .unwrap();
        PeriodicModel::from_parts(
            ip,
            Symbol::intern(dest),
            Proto::Tcp,
            vec![120.0, 3603.5],
            40,
            std,
            cluster,
        )
        .unwrap()
    };
    let a = Ipv4Addr::new(10, 0, 0, 1);
    let b = Ipv4Addr::new(10, 0, 0, 2);
    let periodic = PeriodicModelSet::from_models(
        vec![mk_periodic(a, "hb.cloud.com", 2), mk_periodic(b, "tele.cloud.com", 1)],
        PeriodicTrainConfig::default(),
        0.875,
    )
    .unwrap();
    let tree = DecisionTree::from_nodes(
        vec![
            NodeSpec::Split {
                feature: 1,
                threshold: 0.25,
                left: 1,
                right: 2,
            },
            NodeSpec::Leaf { prob: 0.125 },
            NodeSpec::Leaf { prob: 0.875 },
        ],
        dim,
    )
    .unwrap();
    let forest = RandomForest::from_trees(vec![tree], Some(0.75)).unwrap();
    let user = UserActionModels::from_parts(
        vec![(a, vec![(Symbol::intern("on_off"), forest)])],
        0.9,
    )
    .unwrap();
    let mut names = HashMap::new();
    names.insert(a, "plug".to_string());
    names.insert(b, "camera".to_string());
    let system = SystemModel::from_traces(
        &[vec!["plug:on_off".to_string()]],
        &SystemModelConfig::default(),
    );
    (
        BehavIoT {
            periodic,
            user,
            names,
        },
        system,
    )
}

fn save_fixture(store: &ModelStore, models: &BehavIoT, system: &SystemModel) {
    let cfg = MonitorConfig::default();
    let state = MonitorState {
        last_seen: vec![(
            (Ipv4Addr::new(10, 0, 0, 1), Symbol::intern("hb.cloud.com"), Proto::Tcp),
            1234.5,
        )],
        absence_flagged: vec![Ipv4Addr::new(10, 0, 0, 2)],
        long_flagged: vec![(Symbol::intern("plug:on_off"), Symbol::intern("FINAL"))],
        windows: 7,
    };
    let health = HealthExport {
        cfg: HealthConfig::default(),
        records: vec![
            (Symbol::intern("camera"), HealthState::Stale, 0, 4),
            (Symbol::intern("plug"), HealthState::Deviant, 0, 0),
        ],
    };
    let spec = SnapshotSpec {
        models,
        system: Some(system),
        monitor: Some((&cfg, state)),
        health: Some(health),
        metrics_jsonl: Some("{\"counter\":{\"store.saves\":1}}\n"),
        include_interner: false,
    };
    store.save(&spec).unwrap();
}

fn hash_bytes(b: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = behaviot_intern::FxHasher::default();
    h.write(b);
    h.finish()
}

/// Re-pin the manifest's per-artifact hash/length fields and its check
/// line to whatever is on disk, so a test can hand-edit artifact content
/// and still reach the record parsers behind the integrity layer.
fn rehash_manifest(dir: &std::path::Path) {
    let manifest = fs::read_to_string(dir.join("MANIFEST")).unwrap();
    let mut out = String::new();
    for line in manifest.lines() {
        let f: Vec<&str> = line.split('|').collect();
        if f.len() == 5 && f[0] == "artifact" {
            let bytes = fs::read(dir.join(f[2])).unwrap();
            out.push_str(&format!(
                "artifact|{}|{}|{:016x}|{}\n",
                f[1],
                f[2],
                hash_bytes(&bytes),
                bytes.len()
            ));
        } else if f[0] != "check" {
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str(&format!("check|{:016x}\n", hash_bytes(out.as_bytes())));
    fs::write(dir.join("MANIFEST"), out).unwrap();
}

/// file → artifact-name mapping, read from the pristine manifest (file
/// names are content-addressed, so they aren't predictable up front).
fn artifact_by_file(dir: &std::path::Path) -> HashMap<String, String> {
    fs::read_to_string(dir.join("MANIFEST"))
        .unwrap()
        .lines()
        .filter_map(|l| {
            let f: Vec<&str> = l.split('|').collect();
            (f.len() == 5 && f[0] == "artifact").then(|| (f[2].to_string(), f[1].to_string()))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flip / insert / truncate anywhere in any snapshot file: load always
    /// returns `StoreError` (no panic, no silent success), and when the
    /// mutation hit an artifact file the error names exactly that
    /// artifact.
    #[test]
    fn mutated_snapshot_always_errors(
        file_sel in any::<usize>(),
        kind in any::<u8>(),
        pos in any::<usize>(),
        value in any::<u8>(),
    ) {
        let (models, system) = fixture();
        let dir = temp_dir();
        let store = ModelStore::open(&dir).unwrap();
        save_fixture(&store, &models, &system);
        store.load().expect("pristine snapshot must load");
        let artifacts = artifact_by_file(&dir);

        let mut files: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        files.sort();
        let target = files[file_sel % files.len()].clone();
        let path = dir.join(&target);
        let mut bytes = fs::read(&path).unwrap();
        let before = bytes.clone();
        mutate_bytes(&mut bytes, kind, pos, value);
        prop_assert!(bytes != before, "mutation must change the file");
        fs::write(&path, &bytes).unwrap();

        let err = store.load().map(|_| ()).expect_err("corruption must not load");
        if target != "MANIFEST" {
            let expected = &artifacts[&target];
            prop_assert_eq!(
                err.artifact(),
                Some(expected.as_str()),
                "wrong artifact pinpointed for {} ({:?})",
                target,
                err
            );
            match err {
                StoreError::HashMismatch { .. } | StoreError::Io { .. } => {}
                other => panic!("artifact corruption should fail integrity, got {other:?}"),
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// A deleted artifact file errors (with the artifact named) instead of
/// panicking or loading partially.
#[test]
fn deleted_artifact_file_errors() {
    let (models, system) = fixture();
    let dir = temp_dir();
    let store = ModelStore::open(&dir).unwrap();
    save_fixture(&store, &models, &system);

    let names_file = artifact_by_file(&dir)
        .into_iter()
        .find(|(_, a)| a == "names")
        .map(|(f, _)| f)
        .unwrap();
    fs::remove_file(dir.join(names_file)).unwrap();
    let err = store.load().map(|_| ()).unwrap_err();
    assert_eq!(err.artifact(), Some("names"), "{err:?}");

    fs::remove_dir_all(&dir).unwrap();
}

/// Duplicated monitor records (timer / absent / long) are a hard
/// `StoreError::Duplicate`, not last-wins: `Monitor::restore` collapses
/// these records into maps/sets, so accepting repeats would silently mask
/// a corrupted or hand-edited snapshot — the same policy every other
/// artifact already enforces.
#[test]
fn duplicate_monitor_records_rejected() {
    for kind in ["timer|", "absent|", "long|"] {
        let (models, system) = fixture();
        let dir = temp_dir();
        let store = ModelStore::open(&dir).unwrap();
        save_fixture(&store, &models, &system);

        let monitor_file = artifact_by_file(&dir)
            .into_iter()
            .find(|(_, a)| a == "monitor")
            .map(|(f, _)| f)
            .unwrap();
        let path = dir.join(&monitor_file);
        let text = fs::read_to_string(&path).unwrap();
        let line = text
            .lines()
            .find(|l| l.starts_with(kind))
            .expect("fixture carries one record of each kind");
        fs::write(&path, format!("{text}{line}\n")).unwrap();
        rehash_manifest(&dir);

        match store.load().map(|_| ()).unwrap_err() {
            StoreError::Duplicate { ref artifact, .. } => assert_eq!(artifact, "monitor"),
            other => panic!("expected Duplicate for repeated {kind} record, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// A duplicated health `dev|` record is likewise a hard
/// `StoreError::Duplicate` — the registry restores rows into a per-device
/// map, so last-wins would silently mask snapshot corruption.
#[test]
fn duplicate_health_records_rejected() {
    let (models, system) = fixture();
    let dir = temp_dir();
    let store = ModelStore::open(&dir).unwrap();
    save_fixture(&store, &models, &system);

    let health_file = artifact_by_file(&dir)
        .into_iter()
        .find(|(_, a)| a == "health")
        .map(|(f, _)| f)
        .unwrap();
    let path = dir.join(&health_file);
    let text = fs::read_to_string(&path).unwrap();
    let line = text
        .lines()
        .find(|l| l.starts_with("dev|"))
        .expect("fixture carries health device rows");
    fs::write(&path, format!("{text}{line}\n")).unwrap();
    rehash_manifest(&dir);

    match store.load().map(|_| ()).unwrap_err() {
        StoreError::Duplicate { ref artifact, .. } => assert_eq!(artifact, "health"),
        other => panic!("expected Duplicate for repeated health dev record, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// An empty manifest is a `BadManifest`, not a panic; a missing manifest
/// is an `Io` on `MANIFEST`.
#[test]
fn degenerate_manifests_error() {
    let (models, system) = fixture();
    let dir = temp_dir();
    let store = ModelStore::open(&dir).unwrap();
    save_fixture(&store, &models, &system);

    fs::write(dir.join("MANIFEST"), b"").unwrap();
    assert!(matches!(
        store.load().map(|_| ()).unwrap_err(),
        StoreError::BadManifest { .. }
    ));

    fs::remove_file(dir.join("MANIFEST")).unwrap();
    let err = store.load().map(|_| ()).unwrap_err();
    assert_eq!(err.artifact(), Some("MANIFEST"));

    fs::remove_dir_all(&dir).unwrap();
}

/// A future format version is refused up front.
#[test]
fn future_version_refused() {
    let (models, system) = fixture();
    let dir = temp_dir();
    let store = ModelStore::open(&dir).unwrap();
    save_fixture(&store, &models, &system);

    let manifest = fs::read_to_string(dir.join("MANIFEST")).unwrap();
    let bumped = manifest.replacen("behaviot-store|v2", "behaviot-store|v99", 1);
    fs::write(dir.join("MANIFEST"), bumped).unwrap();
    assert_eq!(
        store.load().map(|_| ()).unwrap_err(),
        StoreError::BadVersion(99)
    );

    fs::remove_dir_all(&dir).unwrap();
}
