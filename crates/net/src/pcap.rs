//! Classic libpcap file format reader/writer.
//!
//! The simulator can persist generated gateway captures in the standard
//! `.pcap` format (magic `0xa1b2c3d4`, microsecond resolution, LINKTYPE_ETHERNET)
//! so traces can be inspected with Wireshark/tcpdump, and the pipeline can
//! ingest captures from disk.

use crate::{NetError, Result};
use std::io::{Read, Write};

const MAGIC_US: u32 = 0xa1b2_c3d4;
const MAGIC_US_SWAPPED: u32 = 0xd4c3_b2a1;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// A captured packet record: timestamp plus raw link-layer bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct PcapRecord {
    /// Capture timestamp in seconds since the epoch of the capture.
    pub ts: f64,
    /// Raw frame bytes (from the Ethernet header on).
    pub data: Vec<u8>,
}

/// Writes a pcap stream: global header then one record per packet.
pub struct PcapWriter<W: Write> {
    inner: W,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header (snaplen 65535,
    /// Ethernet link type, microsecond timestamps).
    pub fn new(mut inner: W) -> Result<Self> {
        inner.write_all(&MAGIC_US.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&65535u32.to_le_bytes())?; // snaplen
        inner.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self { inner })
    }

    /// Append one packet record.
    pub fn write_record(&mut self, rec: &PcapRecord) -> Result<()> {
        let secs = rec.ts.floor();
        let usecs = ((rec.ts - secs) * 1e6).round() as u32;
        // Guard against rounding to a full second.
        let (secs, usecs) = if usecs >= 1_000_000 {
            (secs + 1.0, 0)
        } else {
            (secs, usecs)
        };
        if secs < 0.0 || secs > u32::MAX as f64 {
            return Err(NetError::Invalid {
                what: "pcap record",
                reason: "timestamp out of range",
            });
        }
        self.inner.write_all(&(secs as u32).to_le_bytes())?;
        self.inner.write_all(&usecs.to_le_bytes())?;
        self.inner
            .write_all(&(rec.data.len() as u32).to_le_bytes())?;
        self.inner
            .write_all(&(rec.data.len() as u32).to_le_bytes())?;
        self.inner.write_all(&rec.data)?;
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Reads a pcap stream, iterating over records.
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    /// Link type declared by the file (normally [`LINKTYPE_ETHERNET`]).
    pub linktype: u32,
}

impl<R: Read> PcapReader<R> {
    /// Open a pcap stream, validating the global header. Both byte orders
    /// are accepted.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_US => false,
            MAGIC_US_SWAPPED => true,
            _ => {
                return Err(NetError::Invalid {
                    what: "pcap",
                    reason: "bad magic",
                })
            }
        };
        let read_u32 = |b: &[u8]| {
            let arr = [b[0], b[1], b[2], b[3]];
            if swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let linktype = read_u32(&hdr[20..24]);
        Ok(Self {
            inner,
            swapped,
            linktype,
        })
    }

    /// Read the next record, or `None` at a clean end-of-file.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>> {
        let mut hdr = [0u8; 16];
        match self.inner.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let rd = |b: &[u8]| {
            let arr = [b[0], b[1], b[2], b[3]];
            if self.swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let secs = rd(&hdr[0..4]);
        let usecs = rd(&hdr[4..8]);
        let incl_len = rd(&hdr[8..12]) as usize;
        if incl_len > 1 << 26 {
            return Err(NetError::Invalid {
                what: "pcap record",
                reason: "implausible length",
            });
        }
        let mut data = vec![0u8; incl_len];
        self.inner.read_exact(&mut data)?;
        Ok(Some(PcapRecord {
            ts: secs as f64 + usecs as f64 * 1e-6,
            data,
        }))
    }

    /// Collect all remaining records.
    pub fn read_all(&mut self) -> Result<Vec<PcapRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_multiple_records() {
        let recs = vec![
            PcapRecord {
                ts: 1.5,
                data: vec![1, 2, 3],
            },
            PcapRecord {
                ts: 2.000001,
                data: vec![],
            },
            PcapRecord {
                ts: 1000.999999,
                data: vec![0xff; 64],
            },
        ];
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &recs {
            w.write_record(r).unwrap();
        }
        let buf = w.finish().unwrap();
        let mut rd = PcapReader::new(Cursor::new(buf)).unwrap();
        assert_eq!(rd.linktype, LINKTYPE_ETHERNET);
        let out = rd.read_all().unwrap();
        assert_eq!(out.len(), 3);
        for (a, b) in out.iter().zip(recs.iter()) {
            assert!((a.ts - b.ts).abs() < 2e-6, "{} vs {}", a.ts, b.ts);
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 24];
        assert!(matches!(
            PcapReader::new(Cursor::new(buf)),
            Err(NetError::Invalid {
                reason: "bad magic",
                ..
            })
        ));
    }

    #[test]
    fn truncated_header_is_io_error() {
        let buf = vec![0u8; 10];
        assert!(matches!(
            PcapReader::new(Cursor::new(buf)),
            Err(NetError::Io(_))
        ));
    }

    #[test]
    fn truncated_record_is_io_error() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&PcapRecord {
            ts: 1.0,
            data: vec![1, 2, 3, 4],
        })
        .unwrap();
        let mut buf = w.finish().unwrap();
        buf.truncate(buf.len() - 2);
        let mut rd = PcapReader::new(Cursor::new(buf)).unwrap();
        assert!(rd.next_record().is_err());
    }

    #[test]
    fn negative_timestamp_rejected() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let res = w.write_record(&PcapRecord {
            ts: -1.0,
            data: vec![],
        });
        assert!(res.is_err());
    }

    #[test]
    fn microsecond_rounding_never_overflows() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&PcapRecord {
            ts: 41.9999996,
            data: vec![],
        })
        .unwrap();
        let buf = w.finish().unwrap();
        let mut rd = PcapReader::new(Cursor::new(buf)).unwrap();
        let r = rd.next_record().unwrap().unwrap();
        assert!((r.ts - 42.0).abs() < 1e-9);
    }
}
