//! Classic libpcap file format reader/writer.
//!
//! The simulator can persist generated gateway captures in the standard
//! `.pcap` format (magic `0xa1b2c3d4`, microsecond resolution, LINKTYPE_ETHERNET)
//! so traces can be inspected with Wireshark/tcpdump, and the pipeline can
//! ingest captures from disk.

use crate::{NetError, Result};
use std::io::{Read, Write};

const MAGIC_US: u32 = 0xa1b2_c3d4;
const MAGIC_US_SWAPPED: u32 = 0xd4c3_b2a1;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// A captured packet record: timestamp plus raw link-layer bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct PcapRecord {
    /// Capture timestamp in seconds since the epoch of the capture.
    pub ts: f64,
    /// Raw frame bytes (from the Ethernet header on).
    pub data: Vec<u8>,
}

/// Writes a pcap stream: global header then one record per packet.
pub struct PcapWriter<W: Write> {
    inner: W,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header (snaplen 65535,
    /// Ethernet link type, microsecond timestamps).
    pub fn new(mut inner: W) -> Result<Self> {
        inner.write_all(&MAGIC_US.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&65535u32.to_le_bytes())?; // snaplen
        inner.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self { inner })
    }

    /// Append one packet record.
    pub fn write_record(&mut self, rec: &PcapRecord) -> Result<()> {
        let secs = rec.ts.floor();
        let usecs = ((rec.ts - secs) * 1e6).round() as u32;
        // Guard against rounding to a full second.
        let (secs, usecs) = if usecs >= 1_000_000 {
            (secs + 1.0, 0)
        } else {
            (secs, usecs)
        };
        if secs < 0.0 || secs > u32::MAX as f64 {
            return Err(NetError::Invalid {
                what: "pcap record",
                reason: "timestamp out of range",
            });
        }
        self.inner.write_all(&(secs as u32).to_le_bytes())?;
        self.inner.write_all(&usecs.to_le_bytes())?;
        self.inner
            .write_all(&(rec.data.len() as u32).to_le_bytes())?;
        self.inner
            .write_all(&(rec.data.len() as u32).to_le_bytes())?;
        self.inner.write_all(&rec.data)?;
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// A record view borrowing its frame bytes from the reader's reusable
/// internal buffer — the zero-copy counterpart of [`PcapRecord`]. Valid
/// until the next read call on the same reader.
#[derive(Debug, PartialEq)]
pub struct PcapRecordView<'a> {
    /// Capture timestamp in seconds since the epoch of the capture.
    pub ts: f64,
    /// Raw frame bytes, borrowed from the reader.
    pub data: &'a [u8],
}

/// Reads a pcap stream, iterating over records.
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    /// Link type declared by the file (normally [`LINKTYPE_ETHERNET`]).
    pub linktype: u32,
    /// Reusable frame buffer for the borrowed read path.
    buf: Vec<u8>,
    /// Total input length in bytes, when the caller knows it (lets
    /// [`Self::read_all`] preallocate instead of growing).
    input_len: Option<u64>,
    /// Bytes consumed so far (global header + record headers + frames).
    consumed: u64,
}

impl<R: Read> PcapReader<R> {
    /// Open a pcap stream, validating the global header. Both byte orders
    /// are accepted.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_US => false,
            MAGIC_US_SWAPPED => true,
            _ => {
                return Err(NetError::Invalid {
                    what: "pcap",
                    reason: "bad magic",
                })
            }
        };
        let read_u32 = |b: &[u8]| {
            let arr = [b[0], b[1], b[2], b[3]];
            if swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let linktype = read_u32(&hdr[20..24]);
        Ok(Self {
            inner,
            swapped,
            linktype,
            buf: Vec::new(),
            input_len: None,
            consumed: 24,
        })
    }

    /// Open a pcap stream whose total byte length is known up front (a file
    /// or an in-memory buffer). [`Self::read_all`] uses the length to size
    /// its result exactly instead of growing geometrically.
    pub fn with_input_len(inner: R, total_bytes: u64) -> Result<Self> {
        let mut r = Self::new(inner)?;
        r.input_len = Some(total_bytes);
        Ok(r)
    }

    /// Read the next record into the reader's reusable buffer and return a
    /// borrowed view — no per-record allocation. Returns `None` at a clean
    /// end-of-file.
    pub fn next_record_borrowed(&mut self) -> Result<Option<PcapRecordView<'_>>> {
        let mut hdr = [0u8; 16];
        match self.inner.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let rd = |b: &[u8]| {
            let arr = [b[0], b[1], b[2], b[3]];
            if self.swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let secs = rd(&hdr[0..4]);
        let usecs = rd(&hdr[4..8]);
        let incl_len = rd(&hdr[8..12]) as usize;
        if incl_len > 1 << 26 {
            return Err(NetError::Invalid {
                what: "pcap record",
                reason: "implausible length",
            });
        }
        self.buf.resize(incl_len, 0);
        self.inner.read_exact(&mut self.buf)?;
        self.consumed += 16 + incl_len as u64;
        Ok(Some(PcapRecordView {
            ts: secs as f64 + usecs as f64 * 1e-6,
            data: &self.buf,
        }))
    }

    /// Read the next record as an owned [`PcapRecord`], or `None` at a
    /// clean end-of-file.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>> {
        Ok(self.next_record_borrowed()?.map(|v| PcapRecord {
            ts: v.ts,
            data: v.data.to_vec(),
        }))
    }

    /// Collect all remaining records.
    ///
    /// When the input length is known ([`Self::with_input_len`]), the
    /// result is sized from the remaining byte count and the first record's
    /// on-disk stride, so uniform captures never reallocate.
    pub fn read_all(&mut self) -> Result<Vec<PcapRecord>> {
        let first = match self.next_record()? {
            Some(r) => r,
            None => return Ok(Vec::new()),
        };
        let estimate = match self.input_len {
            Some(total) => {
                let stride = (16 + first.data.len()) as u64;
                let remaining = total.saturating_sub(self.consumed);
                // Cap the guess so a corrupt length field cannot force a
                // huge up-front allocation.
                (1 + remaining / stride).min(1 << 22) as usize
            }
            None => 1,
        };
        let mut out = Vec::with_capacity(estimate);
        out.push(first);
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_multiple_records() {
        let recs = vec![
            PcapRecord {
                ts: 1.5,
                data: vec![1, 2, 3],
            },
            PcapRecord {
                ts: 2.000001,
                data: vec![],
            },
            PcapRecord {
                ts: 1000.999999,
                data: vec![0xff; 64],
            },
        ];
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &recs {
            w.write_record(r).unwrap();
        }
        let buf = w.finish().unwrap();
        let mut rd = PcapReader::new(Cursor::new(buf)).unwrap();
        assert_eq!(rd.linktype, LINKTYPE_ETHERNET);
        let out = rd.read_all().unwrap();
        assert_eq!(out.len(), 3);
        for (a, b) in out.iter().zip(recs.iter()) {
            assert!((a.ts - b.ts).abs() < 2e-6, "{} vs {}", a.ts, b.ts);
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 24];
        assert!(matches!(
            PcapReader::new(Cursor::new(buf)),
            Err(NetError::Invalid {
                reason: "bad magic",
                ..
            })
        ));
    }

    #[test]
    fn truncated_header_is_io_error() {
        let buf = vec![0u8; 10];
        assert!(matches!(
            PcapReader::new(Cursor::new(buf)),
            Err(NetError::Io(_))
        ));
    }

    #[test]
    fn truncated_record_is_io_error() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&PcapRecord {
            ts: 1.0,
            data: vec![1, 2, 3, 4],
        })
        .unwrap();
        let mut buf = w.finish().unwrap();
        buf.truncate(buf.len() - 2);
        let mut rd = PcapReader::new(Cursor::new(buf)).unwrap();
        assert!(rd.next_record().is_err());
    }

    #[test]
    fn negative_timestamp_rejected() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let res = w.write_record(&PcapRecord {
            ts: -1.0,
            data: vec![],
        });
        assert!(res.is_err());
    }

    #[test]
    fn borrowed_reader_matches_owned() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..20u8 {
            w.write_record(&PcapRecord {
                ts: i as f64 * 0.5,
                data: vec![i; 10 + i as usize],
            })
            .unwrap();
        }
        let buf = w.finish().unwrap();
        let mut owned = PcapReader::new(Cursor::new(buf.clone())).unwrap();
        let mut borrowed = PcapReader::new(Cursor::new(buf)).unwrap();
        while let Some(o) = owned.next_record().unwrap() {
            let b = borrowed.next_record_borrowed().unwrap().unwrap();
            assert_eq!(b.ts, o.ts);
            assert_eq!(b.data, &o.data[..]);
        }
        assert!(borrowed.next_record_borrowed().unwrap().is_none());
    }

    #[test]
    fn read_all_preallocates_without_growth() {
        // Uniform records: the stride estimate is exact, so read_all must
        // land on capacity == len (no geometric growth, no over-reserve).
        let n = 513;
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..n {
            w.write_record(&PcapRecord {
                ts: i as f64,
                data: vec![0xab; 60],
            })
            .unwrap();
        }
        let buf = w.finish().unwrap();
        let total = buf.len() as u64;
        let mut rd = PcapReader::with_input_len(Cursor::new(buf), total).unwrap();
        let out = rd.read_all().unwrap();
        assert_eq!(out.len(), n);
        assert_eq!(out.capacity(), n, "read_all grew instead of preallocating");
    }

    #[test]
    fn microsecond_rounding_never_overflows() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&PcapRecord {
            ts: 41.9999996,
            data: vec![],
        })
        .unwrap();
        let buf = w.finish().unwrap();
        let mut rd = PcapReader::new(Cursor::new(buf)).unwrap();
        let r = rd.next_record().unwrap().unwrap();
        assert!((r.ts - 42.0).abs() < 1e-9);
    }
}
