//! Classic libpcap file format reader/writer.
//!
//! The simulator can persist generated gateway captures in the standard
//! `.pcap` format (magic `0xa1b2c3d4`, microsecond resolution, LINKTYPE_ETHERNET)
//! so traces can be inspected with Wireshark/tcpdump, and the pipeline can
//! ingest captures from disk.

use crate::report::{IngestCategory, IngestReport};
use crate::{NetError, Result};
use std::io::{Read, Write};

const MAGIC_US: u32 = 0xa1b2_c3d4;
const MAGIC_US_SWAPPED: u32 = 0xd4c3_b2a1;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// How [`PcapReader`] reacts to a malformed record stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Fail on the first malformed record header or short read (the
    /// historical behavior; suitable for trusted, self-generated captures).
    Strict,
    /// Never fail mid-stream: skip implausible record headers, scan forward
    /// for the next plausible one, swallow a truncated tail, and account for
    /// everything ignored in an [`IngestReport`].
    Recovery,
}

/// Smallest frame a plausible record can carry (an Ethernet header).
const MIN_FRAME_LEN: u32 = 14;
/// Largest capture length a plausible record header may claim (classic
/// snaplen ceiling).
const MAX_FRAME_LEN: u32 = 65_535;
/// Largest original (on-the-wire) length a plausible header may claim.
const MAX_ORIG_LEN: u32 = 1 << 18;
/// A plausible record timestamp may precede the last accepted one by at
/// most this many seconds...
const MAX_SEC_BEHIND: u32 = 7 * 86_400;
/// ...or follow it by at most this many seconds.
const MAX_SEC_AHEAD: u32 = 30 * 86_400;
/// Recovery-buffer compaction threshold: once this many consumed bytes
/// accumulate at the front of the buffer, they are dropped.
const COMPACT_THRESHOLD: usize = 1 << 20;

/// A decoded 16-byte record header (recovery path).
#[derive(Debug, Clone, Copy)]
struct RecHeader {
    sec: u32,
    usec: u32,
    incl: u32,
    orig: u32,
}

/// A captured packet record: timestamp plus raw link-layer bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct PcapRecord {
    /// Capture timestamp in seconds since the epoch of the capture.
    pub ts: f64,
    /// Raw frame bytes (from the Ethernet header on).
    pub data: Vec<u8>,
}

/// Writes a pcap stream: global header then one record per packet.
pub struct PcapWriter<W: Write> {
    inner: W,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header (snaplen 65535,
    /// Ethernet link type, microsecond timestamps).
    pub fn new(mut inner: W) -> Result<Self> {
        inner.write_all(&MAGIC_US.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&65535u32.to_le_bytes())?; // snaplen
        inner.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self { inner })
    }

    /// Append one packet record.
    pub fn write_record(&mut self, rec: &PcapRecord) -> Result<()> {
        let secs = rec.ts.floor();
        let usecs = ((rec.ts - secs) * 1e6).round() as u32;
        // Guard against rounding to a full second.
        let (secs, usecs) = if usecs >= 1_000_000 {
            (secs + 1.0, 0)
        } else {
            (secs, usecs)
        };
        if secs < 0.0 || secs > u32::MAX as f64 {
            return Err(NetError::Invalid {
                what: "pcap record",
                reason: "timestamp out of range",
            });
        }
        self.inner.write_all(&(secs as u32).to_le_bytes())?;
        self.inner.write_all(&usecs.to_le_bytes())?;
        self.inner
            .write_all(&(rec.data.len() as u32).to_le_bytes())?;
        self.inner
            .write_all(&(rec.data.len() as u32).to_le_bytes())?;
        self.inner.write_all(&rec.data)?;
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// A record view borrowing its frame bytes from the reader's reusable
/// internal buffer — the zero-copy counterpart of [`PcapRecord`]. Valid
/// until the next read call on the same reader.
#[derive(Debug, PartialEq)]
pub struct PcapRecordView<'a> {
    /// Capture timestamp in seconds since the epoch of the capture.
    pub ts: f64,
    /// Raw frame bytes, borrowed from the reader.
    pub data: &'a [u8],
}

/// Reads a pcap stream, iterating over records.
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    /// Link type declared by the file (normally [`LINKTYPE_ETHERNET`]).
    pub linktype: u32,
    /// Reusable frame buffer for the borrowed read path.
    buf: Vec<u8>,
    /// Total input length in bytes, when the caller knows it (lets
    /// [`Self::read_all`] preallocate instead of growing).
    input_len: Option<u64>,
    /// Bytes consumed so far (global header + record headers + frames).
    consumed: u64,
    /// Reaction to malformed record streams.
    mode: RecoveryMode,
    /// Recovery-path read buffer (unconsumed raw bytes).
    rbuf: Vec<u8>,
    /// Read position within [`Self::rbuf`].
    rpos: usize,
    /// Whether the underlying reader hit end-of-file (recovery path).
    reof: bool,
    /// Seconds field of the newest accepted record (plausibility anchor).
    last_sec: Option<u32>,
    /// Records yielded so far (sample indices in the report).
    yielded: u64,
    /// Accounting of everything the recovery path ignored.
    report: IngestReport,
}

impl<R: Read> PcapReader<R> {
    /// Open a pcap stream, validating the global header. Both byte orders
    /// are accepted.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_US => false,
            MAGIC_US_SWAPPED => true,
            _ => {
                return Err(NetError::Invalid {
                    what: "pcap",
                    reason: "bad magic",
                })
            }
        };
        let read_u32 = |b: &[u8]| {
            let arr = [b[0], b[1], b[2], b[3]];
            if swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let linktype = read_u32(&hdr[20..24]);
        Ok(Self {
            inner,
            swapped,
            linktype,
            buf: Vec::new(),
            input_len: None,
            consumed: 24,
            mode: RecoveryMode::Strict,
            rbuf: Vec::new(),
            rpos: 0,
            reof: false,
            last_sec: None,
            yielded: 0,
            report: IngestReport::new(),
        })
    }

    /// Open a pcap stream in [`RecoveryMode::Recovery`]: malformed records
    /// are skipped and counted instead of aborting the read. The global
    /// header must still be valid — without a magic number there is no byte
    /// order to recover with.
    pub fn new_recovering(inner: R) -> Result<Self> {
        let mut r = Self::new(inner)?;
        r.mode = RecoveryMode::Recovery;
        Ok(r)
    }

    /// The reader's [`RecoveryMode`].
    pub fn mode(&self) -> RecoveryMode {
        self.mode
    }

    /// Accounting of everything the recovery path has ignored so far.
    /// Always all-zero in [`RecoveryMode::Strict`] and on clean input.
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// Take ownership of the report, leaving an empty one behind.
    pub fn take_report(&mut self) -> IngestReport {
        std::mem::take(&mut self.report)
    }

    /// Open a pcap stream whose total byte length is known up front (a file
    /// or an in-memory buffer). [`Self::read_all`] uses the length to size
    /// its result exactly instead of growing geometrically.
    pub fn with_input_len(inner: R, total_bytes: u64) -> Result<Self> {
        let mut r = Self::new(inner)?;
        r.input_len = Some(total_bytes);
        Ok(r)
    }

    /// Read the next record into the reader's reusable buffer and return a
    /// borrowed view — no per-record allocation. Returns `None` at a clean
    /// end-of-file.
    ///
    /// In [`RecoveryMode::Recovery`] malformed stretches of the stream are
    /// skipped (and accounted in [`Self::report`]) instead of erroring.
    pub fn next_record_borrowed(&mut self) -> Result<Option<PcapRecordView<'_>>> {
        if self.mode == RecoveryMode::Recovery {
            return match self.advance_recovering()? {
                Some(ts) => Ok(Some(PcapRecordView { ts, data: &self.buf })),
                None => Ok(None),
            };
        }
        let mut hdr = [0u8; 16];
        match self.inner.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let rd = |b: &[u8]| {
            let arr = [b[0], b[1], b[2], b[3]];
            if self.swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let secs = rd(&hdr[0..4]);
        let usecs = rd(&hdr[4..8]);
        let incl_len = rd(&hdr[8..12]) as usize;
        if incl_len > 1 << 26 {
            return Err(NetError::Invalid {
                what: "pcap record",
                reason: "implausible length",
            });
        }
        self.buf.resize(incl_len, 0);
        self.inner.read_exact(&mut self.buf)?;
        self.consumed += 16 + incl_len as u64;
        Ok(Some(PcapRecordView {
            ts: secs as f64 + usecs as f64 * 1e-6,
            data: &self.buf,
        }))
    }

    /// Read the next record as an owned [`PcapRecord`], or `None` at a
    /// clean end-of-file.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>> {
        Ok(self.next_record_borrowed()?.map(|v| PcapRecord {
            ts: v.ts,
            data: v.data.to_vec(),
        }))
    }

    /// Collect all remaining records.
    ///
    /// When the input length is known ([`Self::with_input_len`]), the
    /// result is sized from the remaining byte count and the first record's
    /// on-disk stride, so uniform captures never reallocate.
    pub fn read_all(&mut self) -> Result<Vec<PcapRecord>> {
        let first = match self.next_record()? {
            Some(r) => r,
            None => return Ok(Vec::new()),
        };
        let estimate = match self.input_len {
            Some(total) => {
                let stride = (16 + first.data.len()) as u64;
                let remaining = total.saturating_sub(self.consumed);
                // Cap the guess so a corrupt length field cannot force a
                // huge up-front allocation.
                (1 + remaining / stride).min(1 << 22) as usize
            }
            None => 1,
        };
        let mut out = Vec::with_capacity(estimate);
        out.push(first);
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }

    // ---- recovery path -------------------------------------------------
    //
    // Strict mode reads straight from `inner`; recovery needs to scan
    // backtrack-free through arbitrary garbage, so it maintains its own
    // buffered window (`rbuf`/`rpos`) over the raw stream. Every branch
    // below strictly advances `rpos` (a yield by ≥ 16 bytes, a resync scan
    // by ≥ 1), so the reader can never loop forever and yields at most
    // `len/16 + 1` records for a `len`-byte input.

    fn decode_header(&self, b: &[u8]) -> RecHeader {
        let rd = |b: &[u8]| {
            let arr = [b[0], b[1], b[2], b[3]];
            if self.swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        RecHeader {
            sec: rd(&b[0..4]),
            usec: rd(&b[4..8]),
            incl: rd(&b[8..12]),
            orig: rd(&b[12..16]),
        }
    }

    /// Field-level plausibility of a record header, independent of context.
    fn header_fields_plausible(h: &RecHeader) -> bool {
        h.usec < 1_000_000
            && (MIN_FRAME_LEN..=MAX_FRAME_LEN).contains(&h.incl)
            && h.orig >= h.incl
            && h.orig <= MAX_ORIG_LEN
    }

    /// Whether `sec` is within the accepted drift window of `anchor`.
    fn sec_in_window(sec: u32, anchor: u32) -> bool {
        sec >= anchor.saturating_sub(MAX_SEC_BEHIND) && sec <= anchor.saturating_add(MAX_SEC_AHEAD)
    }

    /// Full plausibility: fields plus the timestamp window anchored on the
    /// newest accepted record (no window before the first acceptance).
    fn plausible(&self, h: &RecHeader) -> bool {
        Self::header_fields_plausible(h)
            && self
                .last_sec
                .is_none_or(|last| Self::sec_in_window(h.sec, last))
    }

    /// Pull bytes from the underlying reader until the buffer holds at
    /// least `target` bytes total or the stream ends.
    fn fill_to(&mut self, target: usize) -> Result<()> {
        let mut chunk = [0u8; 8192];
        while !self.reof && self.rbuf.len() < target {
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                self.reof = true;
            } else {
                self.rbuf.extend_from_slice(&chunk[..n]);
            }
        }
        Ok(())
    }

    /// One-level chain validation for a resync candidate at offset `p`:
    /// the header *after* the candidate record must itself look plausible
    /// (anchored on the candidate's timestamp), or the candidate must end
    /// at — or within a sub-header distance of — the end of the stream.
    fn chain_ok(&mut self, p: usize, h: &RecHeader) -> Result<bool> {
        let rec_end = p + 16 + h.incl as usize;
        self.fill_to(rec_end + 16)?;
        if self.rbuf.len() < rec_end {
            // The candidate record itself extends past EOF.
            return Ok(false);
        }
        let remaining = self.rbuf.len() - rec_end;
        if remaining < 16 {
            return Ok(true);
        }
        let next = self.decode_header(&self.rbuf[rec_end..rec_end + 16]);
        Ok(Self::header_fields_plausible(&next) && Self::sec_in_window(next.sec, h.sec))
    }

    /// Advance to the next recoverable record: fills `self.buf` with its
    /// frame bytes and returns its timestamp, or `None` at end-of-stream.
    /// Never returns an error for malformed content — only for real I/O
    /// failures from the underlying reader.
    fn advance_recovering(&mut self) -> Result<Option<f64>> {
        loop {
            if self.rpos >= COMPACT_THRESHOLD {
                self.rbuf.drain(..self.rpos);
                self.rpos = 0;
            }
            self.fill_to(self.rpos + 16)?;
            let avail = self.rbuf.len().saturating_sub(self.rpos);
            if avail == 0 {
                return Ok(None);
            }
            if avail < 16 {
                let ts = self.last_sec.map_or(0.0, |s| s as f64);
                self.report.note(
                    IngestCategory::TruncatedTail,
                    self.yielded,
                    ts,
                    "stream ended inside a record header",
                );
                self.rpos = self.rbuf.len();
                return Ok(None);
            }
            let h = self.decode_header(&self.rbuf[self.rpos..self.rpos + 16]);
            if self.plausible(&h) {
                let end = self.rpos + 16 + h.incl as usize;
                self.fill_to(end)?;
                if self.rbuf.len() < end {
                    self.report.note(
                        IngestCategory::TruncatedTail,
                        self.yielded,
                        rec_ts(&h),
                        "stream ended inside a record body",
                    );
                    self.rpos = self.rbuf.len();
                    return Ok(None);
                }
                self.buf.clear();
                self.buf.extend_from_slice(&self.rbuf[self.rpos + 16..end]);
                self.consumed += (end - self.rpos) as u64;
                self.rpos = end;
                self.last_sec = Some(self.last_sec.map_or(h.sec, |l| l.max(h.sec)));
                self.yielded += 1;
                return Ok(Some(rec_ts(&h)));
            }
            // Implausible header: counted once, then a byte-by-byte forward
            // scan for the next plausible, chain-validated record header.
            self.report.note(
                IngestCategory::BadRecordHeader,
                self.yielded,
                rec_ts(&h),
                "implausible record header",
            );
            let mut p = self.rpos + 1;
            loop {
                self.fill_to(p + 16)?;
                if self.rbuf.len() < p + 16 {
                    // No room left for a header: the remainder of the
                    // stream is unrecoverable.
                    self.report.resync_skipped_bytes += (self.rbuf.len() - self.rpos) as u64;
                    self.rpos = self.rbuf.len();
                    return Ok(None);
                }
                let cand = self.decode_header(&self.rbuf[p..p + 16]);
                if self.plausible(&cand) && self.chain_ok(p, &cand)? {
                    self.report.resync_skipped_bytes += (p - self.rpos) as u64;
                    self.report.note(
                        IngestCategory::Resync,
                        self.yielded,
                        rec_ts(&cand),
                        "resynchronized on next plausible record header",
                    );
                    self.rpos = p;
                    break;
                }
                p += 1;
            }
        }
    }
}

/// Timestamp of a record header as the pipeline's f64 seconds.
fn rec_ts(h: &RecHeader) -> f64 {
    h.sec as f64 + h.usec as f64 * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_multiple_records() {
        let recs = vec![
            PcapRecord {
                ts: 1.5,
                data: vec![1, 2, 3],
            },
            PcapRecord {
                ts: 2.000001,
                data: vec![],
            },
            PcapRecord {
                ts: 1000.999999,
                data: vec![0xff; 64],
            },
        ];
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &recs {
            w.write_record(r).unwrap();
        }
        let buf = w.finish().unwrap();
        let mut rd = PcapReader::new(Cursor::new(buf)).unwrap();
        assert_eq!(rd.linktype, LINKTYPE_ETHERNET);
        let out = rd.read_all().unwrap();
        assert_eq!(out.len(), 3);
        for (a, b) in out.iter().zip(recs.iter()) {
            assert!((a.ts - b.ts).abs() < 2e-6, "{} vs {}", a.ts, b.ts);
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 24];
        assert!(matches!(
            PcapReader::new(Cursor::new(buf)),
            Err(NetError::Invalid {
                reason: "bad magic",
                ..
            })
        ));
    }

    #[test]
    fn truncated_header_is_io_error() {
        let buf = vec![0u8; 10];
        assert!(matches!(
            PcapReader::new(Cursor::new(buf)),
            Err(NetError::Io(_))
        ));
    }

    #[test]
    fn truncated_record_is_io_error() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&PcapRecord {
            ts: 1.0,
            data: vec![1, 2, 3, 4],
        })
        .unwrap();
        let mut buf = w.finish().unwrap();
        buf.truncate(buf.len() - 2);
        let mut rd = PcapReader::new(Cursor::new(buf)).unwrap();
        assert!(rd.next_record().is_err());
    }

    #[test]
    fn negative_timestamp_rejected() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let res = w.write_record(&PcapRecord {
            ts: -1.0,
            data: vec![],
        });
        assert!(res.is_err());
    }

    #[test]
    fn borrowed_reader_matches_owned() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..20u8 {
            w.write_record(&PcapRecord {
                ts: i as f64 * 0.5,
                data: vec![i; 10 + i as usize],
            })
            .unwrap();
        }
        let buf = w.finish().unwrap();
        let mut owned = PcapReader::new(Cursor::new(buf.clone())).unwrap();
        let mut borrowed = PcapReader::new(Cursor::new(buf)).unwrap();
        while let Some(o) = owned.next_record().unwrap() {
            let b = borrowed.next_record_borrowed().unwrap().unwrap();
            assert_eq!(b.ts, o.ts);
            assert_eq!(b.data, &o.data[..]);
        }
        assert!(borrowed.next_record_borrowed().unwrap().is_none());
    }

    #[test]
    fn read_all_preallocates_without_growth() {
        // Uniform records: the stride estimate is exact, so read_all must
        // land on capacity == len (no geometric growth, no over-reserve).
        let n = 513;
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..n {
            w.write_record(&PcapRecord {
                ts: i as f64,
                data: vec![0xab; 60],
            })
            .unwrap();
        }
        let buf = w.finish().unwrap();
        let total = buf.len() as u64;
        let mut rd = PcapReader::with_input_len(Cursor::new(buf), total).unwrap();
        let out = rd.read_all().unwrap();
        assert_eq!(out.len(), n);
        assert_eq!(out.capacity(), n, "read_all grew instead of preallocating");
    }

    fn sample_capture(n: u8) -> (Vec<PcapRecord>, Vec<u8>) {
        let recs: Vec<PcapRecord> = (0..n)
            .map(|i| PcapRecord {
                ts: 100.0 + i as f64 * 0.25,
                data: vec![i; 40 + i as usize],
            })
            .collect();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &recs {
            w.write_record(r).unwrap();
        }
        (recs, w.finish().unwrap())
    }

    #[test]
    fn recovery_on_clean_input_matches_strict_with_zero_report() {
        let (_, buf) = sample_capture(12);
        let mut strict = PcapReader::new(Cursor::new(buf.clone())).unwrap();
        let mut rec = PcapReader::new_recovering(Cursor::new(buf)).unwrap();
        assert_eq!(rec.mode(), RecoveryMode::Recovery);
        let a = strict.read_all().unwrap();
        let b = rec.read_all().unwrap();
        assert_eq!(a, b);
        assert!(rec.report().is_clean(), "clean input dirtied the report");
    }

    #[test]
    fn recovery_resyncs_past_mangled_length_field() {
        let (recs, mut buf) = sample_capture(8);
        // Mangle the incl_len field of record 2 to an implausible value.
        // Records 0 and 1 occupy (16+40) + (16+41) bytes after the header.
        let rec2_hdr = 24 + (16 + 40) + (16 + 41);
        buf[rec2_hdr + 8..rec2_hdr + 12].copy_from_slice(&0x4000_0000u32.to_le_bytes());
        let mut rd = PcapReader::new_recovering(Cursor::new(buf)).unwrap();
        let out = rd.read_all().unwrap();
        // Record 2 is lost; everything else survives.
        assert_eq!(out.len(), recs.len() - 1);
        assert_eq!(out[2].data, recs[3].data);
        let rep = rd.report();
        assert_eq!(rep.bad_record_headers, 1);
        assert_eq!(rep.resyncs, 1);
        // The scan skipped the mangled header plus record 2's frame bytes.
        assert_eq!(rep.resync_skipped_bytes, 16 + 42);
        assert_eq!(rep.dropped_records(), 1);
    }

    #[test]
    fn recovery_swallows_truncated_tail() {
        let (recs, mut buf) = sample_capture(6);
        buf.truncate(buf.len() - 20); // cut into the last record's body
        let mut rd = PcapReader::new_recovering(Cursor::new(buf)).unwrap();
        let out = rd.read_all().unwrap();
        assert_eq!(out.len(), recs.len() - 1);
        assert_eq!(rd.report().truncated_tail, 1);
        assert_eq!(rd.report().dropped_records(), 1);
    }

    #[test]
    fn recovery_handles_garbage_only_stream() {
        // Valid global header followed by non-record noise: nothing yields,
        // nothing panics, nothing loops.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&PcapRecord {
            ts: 5.0,
            data: vec![0xaa; 20],
        })
        .unwrap();
        let mut buf = w.finish().unwrap();
        // Overwrite the record header with 0xff noise so it is implausible.
        for b in &mut buf[24..40] {
            *b = 0xff;
        }
        let mut rd = PcapReader::new_recovering(Cursor::new(buf)).unwrap();
        assert!(rd.read_all().unwrap().is_empty());
        assert_eq!(rd.report().bad_record_headers, 1);
        assert_eq!(rd.report().resyncs, 0);
    }

    #[test]
    fn recovery_still_rejects_bad_magic() {
        let buf = vec![0u8; 24];
        assert!(PcapReader::new_recovering(Cursor::new(buf)).is_err());
    }

    #[test]
    fn microsecond_rounding_never_overflows() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&PcapRecord {
            ts: 41.9999996,
            data: vec![],
        })
        .unwrap();
        let buf = w.finish().unwrap();
        let mut rd = PcapReader::new(Cursor::new(buf)).unwrap();
        let r = rd.next_record().unwrap().unwrap();
        assert!((r.ts - 42.0).abs() < 1e-9);
    }
}
