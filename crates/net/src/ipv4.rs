//! IPv4 header encoding and parsing, including header checksums.

use crate::{NetError, Proto, Result};
use std::net::Ipv4Addr;

/// Minimum (and, for our traffic, the only) IPv4 header length.
pub const HEADER_LEN: usize = 20;

/// A parsed IPv4 header plus a view of the payload (options are accepted on
/// parse but never generated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet<'a> {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol number (see [`Proto::from_number`]).
    pub protocol: u8,
    /// Time-to-live.
    pub ttl: u8,
    /// Identification field.
    pub ident: u16,
    /// Total length as declared by the header.
    pub total_len: u16,
    /// Transport payload.
    pub payload: &'a [u8],
}

impl Ipv4Packet<'_> {
    /// The transport protocol, if it is one BehavIoT models.
    pub fn proto(&self) -> Option<Proto> {
        Proto::from_number(self.protocol)
    }
}

/// Internet checksum (RFC 1071) over `data`.
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Encode an IPv4 packet (no options, DF set, TTL 64) around `payload`.
pub fn encode(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, ident: u16, payload: &[u8]) -> Vec<u8> {
    let total_len = (HEADER_LEN + payload.len()) as u16;
    let mut hdr = [0u8; HEADER_LEN];
    hdr[0] = 0x45; // version 4, IHL 5
    hdr[1] = 0; // DSCP/ECN
    hdr[2..4].copy_from_slice(&total_len.to_be_bytes());
    hdr[4..6].copy_from_slice(&ident.to_be_bytes());
    hdr[6..8].copy_from_slice(&0x4000u16.to_be_bytes()); // DF
    hdr[8] = 64; // TTL
    hdr[9] = protocol;
    // checksum at [10..12], zero during computation
    hdr[12..16].copy_from_slice(&src.octets());
    hdr[16..20].copy_from_slice(&dst.octets());
    let ck = checksum(&hdr);
    hdr[10..12].copy_from_slice(&ck.to_be_bytes());

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&hdr);
    out.extend_from_slice(payload);
    out
}

/// Parse an IPv4 packet, verifying version, lengths and the header checksum.
pub fn parse(bytes: &[u8]) -> Result<Ipv4Packet<'_>> {
    if bytes.len() < HEADER_LEN {
        return Err(NetError::Truncated {
            what: "ipv4",
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let version = bytes[0] >> 4;
    if version != 4 {
        return Err(NetError::Invalid {
            what: "ipv4",
            reason: "version is not 4",
        });
    }
    let ihl = (bytes[0] & 0x0f) as usize * 4;
    if ihl < HEADER_LEN {
        return Err(NetError::Invalid {
            what: "ipv4",
            reason: "IHL below minimum",
        });
    }
    if bytes.len() < ihl {
        return Err(NetError::Truncated {
            what: "ipv4 options",
            needed: ihl,
            got: bytes.len(),
        });
    }
    if checksum(&bytes[..ihl]) != 0 {
        return Err(NetError::Invalid {
            what: "ipv4",
            reason: "header checksum mismatch",
        });
    }
    let total_len = u16::from_be_bytes([bytes[2], bytes[3]]);
    if (total_len as usize) < ihl || bytes.len() < total_len as usize {
        return Err(NetError::Invalid {
            what: "ipv4",
            reason: "total length inconsistent",
        });
    }
    Ok(Ipv4Packet {
        src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
        dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
        protocol: bytes[9],
        ttl: bytes[8],
        ident: u16::from_be_bytes([bytes[4], bytes[5]]),
        total_len,
        payload: &bytes[ihl..total_len as usize],
    })
}

/// Pseudo-header checksum seed for TCP/UDP checksums over IPv4.
pub(crate) fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, len: u16) -> u32 {
    let s = src.octets();
    let d = dst.octets();
    u32::from(u16::from_be_bytes([s[0], s[1]]))
        + u32::from(u16::from_be_bytes([s[2], s[3]]))
        + u32::from(u16::from_be_bytes([d[0], d[1]]))
        + u32::from(u16::from_be_bytes([d[2], d[3]]))
        + u32::from(protocol)
        + u32::from(len)
}

/// Finish a transport checksum that includes the IPv4 pseudo-header.
pub(crate) fn transport_checksum(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    segment: &[u8],
) -> u16 {
    let mut sum = pseudo_header_sum(src, dst, protocol, segment.len() as u16);
    let mut chunks = segment.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    let ck = !(sum as u16);
    // Per RFC 768 a computed zero UDP checksum is transmitted as all-ones.
    if ck == 0 {
        0xffff
    } else {
        ck
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
    const B: Ipv4Addr = Ipv4Addr::new(52, 119, 1, 2);

    #[test]
    fn roundtrip() {
        let pkt = encode(A, B, 6, 0x1234, b"payload!");
        let parsed = parse(&pkt).unwrap();
        assert_eq!(parsed.src, A);
        assert_eq!(parsed.dst, B);
        assert_eq!(parsed.protocol, 6);
        assert_eq!(parsed.proto(), Some(Proto::Tcp));
        assert_eq!(parsed.ident, 0x1234);
        assert_eq!(parsed.payload, b"payload!");
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut pkt = encode(A, B, 17, 1, b"x");
        pkt[8] ^= 0xff; // corrupt TTL
        assert!(matches!(parse(&pkt), Err(NetError::Invalid { .. })));
    }

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071: sum of 00 01 f2 03 f4 f5 f6 f7 -> checksum
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2u16);
    }

    #[test]
    fn odd_length_checksum() {
        let data = [0xab, 0xcd, 0xef];
        // Manually: abcd + ef00 = 1_9acd -> 9ace -> !0x9ace
        assert_eq!(checksum(&data), !0x9aceu16);
    }

    #[test]
    fn truncated_and_bad_version() {
        assert!(matches!(parse(&[0u8; 10]), Err(NetError::Truncated { .. })));
        let mut pkt = encode(A, B, 6, 0, b"");
        pkt[0] = 0x65; // version 6
        assert!(matches!(parse(&pkt), Err(NetError::Invalid { .. })));
    }

    #[test]
    fn total_len_bounds_payload() {
        // Extra trailing bytes beyond total_len must be excluded.
        let mut pkt = encode(A, B, 6, 0, b"abcd");
        pkt.extend_from_slice(b"JUNK");
        let parsed = parse(&pkt).unwrap();
        assert_eq!(parsed.payload, b"abcd");
    }
}
