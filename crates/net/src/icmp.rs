//! ICMPv4 echo request/reply (RFC 792) with checksums.
//!
//! Consumer gateways ping devices for liveness; parsers must recognize
//! ICMP to skip it (the pipeline models only TCP/UDP flows per §2 of the
//! paper).

use crate::ipv4::checksum;
use crate::{NetError, Result};

/// ICMP echo header length.
pub const HEADER_LEN: usize = 8;

/// Echo message kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EchoKind {
    /// Type 8: echo request.
    Request,
    /// Type 0: echo reply.
    Reply,
}

/// A parsed ICMP echo message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Echo<'a> {
    /// Request or reply.
    pub kind: EchoKind,
    /// Identifier.
    pub ident: u16,
    /// Sequence number.
    pub seq: u16,
    /// Payload bytes.
    pub payload: &'a [u8],
}

/// Encode an echo message with a valid checksum.
pub fn encode_echo(kind: EchoKind, ident: u16, seq: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(match kind {
        EchoKind::Request => 8,
        EchoKind::Reply => 0,
    });
    out.push(0); // code
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&ident.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(payload);
    let ck = checksum(&out);
    out[2..4].copy_from_slice(&ck.to_be_bytes());
    out
}

/// Parse an ICMP message; only echo request/reply are returned (other
/// types yield `Invalid`, matching this crate's modeling scope).
pub fn parse_echo(bytes: &[u8]) -> Result<Echo<'_>> {
    if bytes.len() < HEADER_LEN {
        return Err(NetError::Truncated {
            what: "icmp",
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    if checksum(bytes) != 0 {
        return Err(NetError::Invalid {
            what: "icmp",
            reason: "checksum mismatch",
        });
    }
    let kind = match bytes[0] {
        8 => EchoKind::Request,
        0 => EchoKind::Reply,
        _ => {
            return Err(NetError::Invalid {
                what: "icmp",
                reason: "not an echo message",
            })
        }
    };
    Ok(Echo {
        kind,
        ident: u16::from_be_bytes([bytes[4], bytes[5]]),
        seq: u16::from_be_bytes([bytes[6], bytes[7]]),
        payload: &bytes[HEADER_LEN..],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let pkt = encode_echo(EchoKind::Request, 0xBEEF, 7, b"liveness-probe");
        let parsed = parse_echo(&pkt).unwrap();
        assert_eq!(parsed.kind, EchoKind::Request);
        assert_eq!(parsed.ident, 0xBEEF);
        assert_eq!(parsed.seq, 7);
        assert_eq!(parsed.payload, b"liveness-probe");
    }

    #[test]
    fn reply_and_empty_payload() {
        let pkt = encode_echo(EchoKind::Reply, 1, 2, b"");
        let parsed = parse_echo(&pkt).unwrap();
        assert_eq!(parsed.kind, EchoKind::Reply);
        assert!(parsed.payload.is_empty());
    }

    #[test]
    fn corruption_detected() {
        let mut pkt = encode_echo(EchoKind::Request, 1, 2, b"abc");
        *pkt.last_mut().unwrap() ^= 1;
        assert!(matches!(parse_echo(&pkt), Err(NetError::Invalid { .. })));
    }

    #[test]
    fn non_echo_rejected() {
        // Type 3 (destination unreachable) with a valid checksum.
        let mut pkt = vec![3u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = checksum(&pkt);
        pkt[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(parse_echo(&pkt), Err(NetError::Invalid { .. })));
        assert!(matches!(
            parse_echo(&[1, 2]),
            Err(NetError::Truncated { .. })
        ));
    }
}
