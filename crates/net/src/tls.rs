//! TLS ClientHello building and SNI extraction.
//!
//! IoT traffic is mostly TLS; the Server Name Indication extension in the
//! ClientHello is one of the two in-band sources of destination domain names
//! (§4.1). We build a syntactically valid TLS 1.2 ClientHello carrying an
//! SNI extension, and parse SNI out of arbitrary ClientHello records.

use crate::{NetError, Result};

const CONTENT_HANDSHAKE: u8 = 22;
const HANDSHAKE_CLIENT_HELLO: u8 = 1;
const EXT_SERVER_NAME: u16 = 0;

/// Build a TLS 1.2 ClientHello record with an SNI extension for `host`.
/// `random_seed` fills the 32-byte client random deterministically.
pub fn build_client_hello(host: &str, random_seed: u64) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&[0x03, 0x03]); // client_version TLS1.2
    let mut rnd = [0u8; 32];
    let mut state = random_seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    for b in rnd.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = (state >> 24) as u8;
    }
    body.extend_from_slice(&rnd);
    body.push(0); // session id length
    body.extend_from_slice(&4u16.to_be_bytes()); // cipher suites len
    body.extend_from_slice(&[0x13, 0x01, 0x13, 0x02]); // two suites
    body.push(1); // compression methods len
    body.push(0); // null compression

    // Extensions: only server_name.
    let host_bytes = host.as_bytes();
    let server_name_list_len = 3 + host_bytes.len();
    let ext_data_len = 2 + server_name_list_len;
    let mut exts = Vec::new();
    exts.extend_from_slice(&EXT_SERVER_NAME.to_be_bytes());
    exts.extend_from_slice(&(ext_data_len as u16).to_be_bytes());
    exts.extend_from_slice(&(server_name_list_len as u16).to_be_bytes());
    exts.push(0); // name_type host_name
    exts.extend_from_slice(&(host_bytes.len() as u16).to_be_bytes());
    exts.extend_from_slice(host_bytes);
    body.extend_from_slice(&(exts.len() as u16).to_be_bytes());
    body.extend_from_slice(&exts);

    // Handshake header.
    let mut hs = Vec::with_capacity(4 + body.len());
    hs.push(HANDSHAKE_CLIENT_HELLO);
    hs.extend_from_slice(&(body.len() as u32).to_be_bytes()[1..]); // 24-bit length
    hs.extend_from_slice(&body);

    // Record header.
    let mut rec = Vec::with_capacity(5 + hs.len());
    rec.push(CONTENT_HANDSHAKE);
    rec.extend_from_slice(&[0x03, 0x01]); // record version
    rec.extend_from_slice(&(hs.len() as u16).to_be_bytes());
    rec.extend_from_slice(&hs);
    rec
}

/// Extract the SNI host name from a TLS record if it is a ClientHello that
/// carries one. Returns `Ok(None)` when the record is valid TLS but not a
/// ClientHello-with-SNI; errors only on malformed framing.
pub fn extract_sni(record: &[u8]) -> Result<Option<String>> {
    if record.len() < 5 {
        return Err(NetError::Truncated {
            what: "tls record",
            needed: 5,
            got: record.len(),
        });
    }
    if record[0] != CONTENT_HANDSHAKE {
        return Ok(None);
    }
    let rec_len = u16::from_be_bytes([record[3], record[4]]) as usize;
    if record.len() < 5 + rec_len {
        return Err(NetError::Truncated {
            what: "tls record body",
            needed: 5 + rec_len,
            got: record.len(),
        });
    }
    let hs = &record[5..5 + rec_len];
    if hs.len() < 4 || hs[0] != HANDSHAKE_CLIENT_HELLO {
        return Ok(None);
    }
    let body_len = u32::from_be_bytes([0, hs[1], hs[2], hs[3]]) as usize;
    if hs.len() < 4 + body_len {
        return Err(NetError::Truncated {
            what: "client hello",
            needed: 4 + body_len,
            got: hs.len(),
        });
    }
    let b = &hs[4..4 + body_len];
    // version(2) + random(32)
    let mut pos = 34usize;
    let need = |p: usize, n: usize, what: &'static str| -> Result<()> {
        if p + n > b.len() {
            Err(NetError::Truncated {
                what,
                needed: p + n,
                got: b.len(),
            })
        } else {
            Ok(())
        }
    };
    need(pos, 1, "session id")?;
    let sid_len = b[pos] as usize;
    pos += 1 + sid_len;
    need(pos, 2, "cipher suites")?;
    let cs_len = u16::from_be_bytes([b[pos], b[pos + 1]]) as usize;
    pos += 2 + cs_len;
    need(pos, 1, "compression")?;
    let comp_len = b[pos] as usize;
    pos += 1 + comp_len;
    if pos == b.len() {
        return Ok(None); // no extensions
    }
    need(pos, 2, "extensions length")?;
    let ext_total = u16::from_be_bytes([b[pos], b[pos + 1]]) as usize;
    pos += 2;
    need(pos, ext_total, "extensions")?;
    let mut e = pos;
    let ext_end = pos + ext_total;
    while e + 4 <= ext_end {
        let etype = u16::from_be_bytes([b[e], b[e + 1]]);
        let elen = u16::from_be_bytes([b[e + 2], b[e + 3]]) as usize;
        e += 4;
        if e + elen > ext_end {
            return Err(NetError::Invalid {
                what: "tls extension",
                reason: "overruns block",
            });
        }
        if etype == EXT_SERVER_NAME && elen >= 5 {
            let d = &b[e..e + elen];
            // server_name_list length (2), then entries: type(1) len(2) name
            let mut p = 2;
            while p + 3 <= d.len() {
                let name_type = d[p];
                let nlen = u16::from_be_bytes([d[p + 1], d[p + 2]]) as usize;
                p += 3;
                if p + nlen > d.len() {
                    return Err(NetError::Invalid {
                        what: "sni",
                        reason: "name overruns",
                    });
                }
                if name_type == 0 {
                    return Ok(Some(
                        String::from_utf8_lossy(&d[p..p + nlen]).to_lowercase(),
                    ));
                }
                p += nlen;
            }
        }
        e += elen;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sni() {
        let rec = build_client_hello("device-metrics-us.amazon.com", 42);
        let sni = extract_sni(&rec).unwrap();
        assert_eq!(sni.as_deref(), Some("device-metrics-us.amazon.com"));
    }

    #[test]
    fn case_normalized() {
        let rec = build_client_hello("API.Example.COM", 1);
        assert_eq!(
            extract_sni(&rec).unwrap().as_deref(),
            Some("api.example.com")
        );
    }

    #[test]
    fn non_handshake_record_is_none() {
        let mut rec = build_client_hello("x.io", 2);
        rec[0] = 23; // application data
        assert_eq!(extract_sni(&rec).unwrap(), None);
    }

    #[test]
    fn truncated_record_errors() {
        let rec = build_client_hello("abc.example.org", 3);
        assert!(extract_sni(&rec[..rec.len() / 2]).is_err());
        assert!(extract_sni(&[22, 3]).is_err());
    }

    #[test]
    fn random_is_seed_deterministic() {
        assert_eq!(build_client_hello("a.b", 9), build_client_hello("a.b", 9));
        assert_ne!(build_client_hello("a.b", 9), build_client_hello("a.b", 10));
    }

    #[test]
    fn hello_without_extensions_is_none() {
        // Hand-roll a minimal ClientHello with no extensions.
        let mut body = vec![0x03, 0x03];
        body.extend_from_slice(&[0u8; 32]);
        body.push(0); // session id
        body.extend_from_slice(&2u16.to_be_bytes());
        body.extend_from_slice(&[0x13, 0x01]);
        body.push(1);
        body.push(0);
        let mut hs = vec![1];
        hs.extend_from_slice(&(body.len() as u32).to_be_bytes()[1..]);
        hs.extend_from_slice(&body);
        let mut rec = vec![22, 3, 1];
        rec.extend_from_slice(&(hs.len() as u16).to_be_bytes());
        rec.extend_from_slice(&hs);
        assert_eq!(extract_sni(&rec).unwrap(), None);
    }
}
