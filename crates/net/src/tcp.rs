//! TCP segment encoding and parsing (header + flags + checksum).

use crate::ipv4::transport_checksum;
use crate::{NetError, Result};
use std::net::Ipv4Addr;

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN flag.
    pub fin: bool,
    /// SYN flag.
    pub syn: bool,
    /// RST flag.
    pub rst: bool,
    /// PSH flag.
    pub psh: bool,
    /// ACK flag.
    pub ack: bool,
}

impl TcpFlags {
    /// A plain data segment (`PSH|ACK`).
    pub const DATA: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: false,
        psh: true,
        ack: true,
    };
    /// Connection-opening `SYN`.
    pub const SYN: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: false,
    };
    /// `SYN|ACK` reply.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: true,
    };
    /// Pure `ACK`.
    pub const ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: false,
        psh: false,
        ack: true,
    };
    /// `FIN|ACK` teardown.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        fin: true,
        syn: false,
        rst: false,
        psh: false,
        ack: true,
    };

    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 1 != 0,
            syn: b & 2 != 0,
            rst: b & 4 != 0,
            psh: b & 8 != 0,
            ack: b & 16 != 0,
        }
    }
}

/// A parsed TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised window.
    pub window: u16,
    /// Payload bytes.
    pub payload: &'a [u8],
}

/// Encode a TCP segment; addresses are needed for the pseudo-header
/// checksum.
#[allow(clippy::too_many_arguments)]
pub fn encode(
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    payload: &[u8],
) -> Vec<u8> {
    let mut seg = Vec::with_capacity(HEADER_LEN + payload.len());
    seg.extend_from_slice(&src_port.to_be_bytes());
    seg.extend_from_slice(&dst_port.to_be_bytes());
    seg.extend_from_slice(&seq.to_be_bytes());
    seg.extend_from_slice(&ack.to_be_bytes());
    seg.push(0x50); // data offset 5, no options
    seg.push(flags.to_byte());
    seg.extend_from_slice(&0xffffu16.to_be_bytes()); // window
    seg.extend_from_slice(&[0, 0]); // checksum placeholder
    seg.extend_from_slice(&[0, 0]); // urgent pointer
    seg.extend_from_slice(payload);
    let ck = transport_checksum(src_ip, dst_ip, 6, &seg);
    seg[16..18].copy_from_slice(&ck.to_be_bytes());
    seg
}

/// Parse a TCP segment and verify its checksum against the given addresses.
pub fn parse<'a>(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, bytes: &'a [u8]) -> Result<TcpSegment<'a>> {
    if bytes.len() < HEADER_LEN {
        return Err(NetError::Truncated {
            what: "tcp",
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let data_off = (bytes[12] >> 4) as usize * 4;
    if data_off < HEADER_LEN || bytes.len() < data_off {
        return Err(NetError::Invalid {
            what: "tcp",
            reason: "bad data offset",
        });
    }
    let mut sum_input = bytes.to_vec();
    sum_input[16] = 0;
    sum_input[17] = 0;
    let expect = u16::from_be_bytes([bytes[16], bytes[17]]);
    if transport_checksum(src_ip, dst_ip, 6, &sum_input) != expect {
        return Err(NetError::Invalid {
            what: "tcp",
            reason: "checksum mismatch",
        });
    }
    Ok(TcpSegment {
        src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
        dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
        seq: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        ack: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
        flags: TcpFlags::from_byte(bytes[13]),
        window: u16::from_be_bytes([bytes[14], bytes[15]]),
        payload: &bytes[data_off..],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn roundtrip() {
        let seg = encode(A, B, 50000, 443, 1000, 2000, TcpFlags::DATA, b"tls bytes");
        let parsed = parse(A, B, &seg).unwrap();
        assert_eq!(parsed.src_port, 50000);
        assert_eq!(parsed.dst_port, 443);
        assert_eq!(parsed.seq, 1000);
        assert_eq!(parsed.ack, 2000);
        assert!(parsed.flags.psh && parsed.flags.ack);
        assert_eq!(parsed.payload, b"tls bytes");
    }

    #[test]
    fn checksum_binds_addresses() {
        let seg = encode(A, B, 1, 2, 0, 0, TcpFlags::SYN, b"");
        // Same bytes, wrong pseudo-header -> checksum mismatch. (Note that
        // merely swapping src/dst keeps the one's-complement sum identical,
        // so we use a genuinely different address.)
        let c = Ipv4Addr::new(10, 0, 0, 7);
        assert!(parse(A, c, &seg).is_err());
        assert!(parse(A, B, &seg).is_ok());
    }

    #[test]
    fn corrupted_payload_detected() {
        let mut seg = encode(A, B, 1, 2, 9, 9, TcpFlags::DATA, b"hello");
        *seg.last_mut().unwrap() ^= 0x01;
        assert!(matches!(parse(A, B, &seg), Err(NetError::Invalid { .. })));
    }

    #[test]
    fn flags_roundtrip() {
        for flags in [
            TcpFlags::SYN,
            TcpFlags::SYN_ACK,
            TcpFlags::ACK,
            TcpFlags::FIN_ACK,
        ] {
            let seg = encode(A, B, 1, 2, 0, 0, flags, b"");
            assert_eq!(parse(A, B, &seg).unwrap().flags, flags);
        }
    }

    #[test]
    fn truncated() {
        assert!(matches!(
            parse(A, B, &[0u8; 12]),
            Err(NetError::Truncated { .. })
        ));
    }
}
