//! Ingest accounting: what a lossy-tolerant run ignored, and why.
//!
//! Real gateway captures are hostile — truncated records, mangled headers,
//! duplicated and reordered packets, clock steps. The recovery-mode ingest
//! path ([`crate::pcap::PcapReader`] in [`crate::pcap::RecoveryMode::Recovery`],
//! `behaviot_flows::ingest`) never aborts on such input; instead every
//! skipped byte and dropped record is counted here, per category, with the
//! first few occurrences kept as samples for diagnosis. A clean capture
//! must produce an all-zero report — the recovery path is required to be
//! invisible when nothing is wrong.

use std::fmt;

/// Number of anomaly samples retained per report (first-N policy).
pub const MAX_SAMPLES: usize = 8;

/// Registry metric names mirroring [`IngestReport::counters`], in the same
/// stable order. [`IngestReport::emit_metrics`] publishes under these names;
/// [`IngestReport::from_snapshot`] reads them back.
pub const METRIC_NAMES: [&str; 9] = [
    "ingest.bad_record_headers",
    "ingest.resyncs",
    "ingest.resync_skipped_bytes",
    "ingest.truncated_tail",
    "ingest.corrupt_frames",
    "ingest.duplicates",
    "ingest.clock_skew_drops",
    "ingest.reordered",
    "ingest.clamped_events",
];

/// The anomaly categories the ingest path distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestCategory {
    /// A pcap record header failed plausibility checks (mangled length or
    /// timestamp fields) and a resynchronization scan was started.
    BadRecordHeader,
    /// A resynchronization scan found the next plausible record header.
    Resync,
    /// The byte stream ended in the middle of a record (mid-stream EOF).
    TruncatedTail,
    /// An IPv4 TCP/UDP frame failed structural or checksum validation.
    CorruptFrame,
    /// A record was an exact duplicate of a recently seen record.
    Duplicate,
    /// A record's timestamp was far behind the stream high-water mark
    /// (backwards clock jump) and the record was dropped.
    ClockSkew,
    /// A record arrived out of timestamp order but within tolerance; it was
    /// accepted (informational — nothing was dropped).
    Reordered,
    /// The event-inference stage clamped a non-finite or negative flow
    /// duration instead of panicking.
    ClampedEvent,
}

impl IngestCategory {
    /// Short stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            IngestCategory::BadRecordHeader => "bad_record_header",
            IngestCategory::Resync => "resync",
            IngestCategory::TruncatedTail => "truncated_tail",
            IngestCategory::CorruptFrame => "corrupt_frame",
            IngestCategory::Duplicate => "duplicate",
            IngestCategory::ClockSkew => "clock_skew",
            IngestCategory::Reordered => "reordered",
            IngestCategory::ClampedEvent => "clamped_event",
        }
    }
}

/// One retained anomaly occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestSample {
    /// Category of the anomaly.
    pub category: IngestCategory,
    /// Index of the record (or event) at which it was observed, counting
    /// records as the reader yielded them.
    pub index: u64,
    /// Timestamp associated with the anomaly, when one exists.
    pub ts: f64,
    /// Human-readable detail.
    pub detail: &'static str,
}

/// Per-category drop/resync/clamp counters plus first-N samples.
///
/// Threaded from `net` (pcap recovery) through `flows` (frame
/// classification, dedup, clock-skew gate) to `core` (duration clamping)
/// and surfaced by the harness/bench binaries, so every run reports exactly
/// what it ignored.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Implausible pcap record headers (each starts a resync scan).
    pub bad_record_headers: u64,
    /// Successful resynchronizations onto a plausible record header.
    pub resyncs: u64,
    /// Bytes skipped by resynchronization scans.
    pub resync_skipped_bytes: u64,
    /// Streams that ended mid-record.
    pub truncated_tail: u64,
    /// IPv4 TCP/UDP frames that failed structural/checksum validation.
    pub corrupt_frames: u64,
    /// Exact duplicate records dropped.
    pub duplicates: u64,
    /// Records dropped by the backwards-clock-skew gate.
    pub clock_skew_drops: u64,
    /// Records accepted despite arriving out of timestamp order.
    pub reordered: u64,
    /// Flow durations clamped by the event-inference stage.
    pub clamped_events: u64,
    /// First-N anomaly samples across all categories.
    pub samples: Vec<IngestSample>,
}

impl IngestReport {
    /// A fresh all-zero report.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing at all was ignored, dropped, clamped, or even
    /// reordered — the required outcome on clean input.
    pub fn is_clean(&self) -> bool {
        self.bad_record_headers == 0
            && self.resyncs == 0
            && self.resync_skipped_bytes == 0
            && self.truncated_tail == 0
            && self.corrupt_frames == 0
            && self.duplicates == 0
            && self.clock_skew_drops == 0
            && self.reordered == 0
            && self.clamped_events == 0
    }

    /// Number of records that were lost to corruption (categories that drop
    /// data; `reordered` and `clamped_events` do not lose records).
    pub fn dropped_records(&self) -> u64 {
        self.bad_record_headers
            + self.truncated_tail
            + self.corrupt_frames
            + self.duplicates
            + self.clock_skew_drops
    }

    /// Fraction of records lost, given the total number of records the
    /// stream was expected to carry (yielded + dropped).
    pub fn drop_frac(&self, records_total: u64) -> f64 {
        if records_total == 0 {
            0.0
        } else {
            self.dropped_records() as f64 / records_total as f64
        }
    }

    /// Record one anomaly, keeping the first [`MAX_SAMPLES`] as samples.
    pub fn note(&mut self, category: IngestCategory, index: u64, ts: f64, detail: &'static str) {
        match category {
            IngestCategory::BadRecordHeader => self.bad_record_headers += 1,
            IngestCategory::Resync => self.resyncs += 1,
            IngestCategory::TruncatedTail => self.truncated_tail += 1,
            IngestCategory::CorruptFrame => self.corrupt_frames += 1,
            IngestCategory::Duplicate => self.duplicates += 1,
            IngestCategory::ClockSkew => self.clock_skew_drops += 1,
            IngestCategory::Reordered => self.reordered += 1,
            IngestCategory::ClampedEvent => self.clamped_events += 1,
        }
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(IngestSample {
                category,
                index,
                ts,
                detail,
            });
        }
    }

    /// Fold another report into this one (samples keep the first-N policy).
    pub fn merge(&mut self, other: &IngestReport) {
        self.bad_record_headers += other.bad_record_headers;
        self.resyncs += other.resyncs;
        self.resync_skipped_bytes += other.resync_skipped_bytes;
        self.truncated_tail += other.truncated_tail;
        self.corrupt_frames += other.corrupt_frames;
        self.duplicates += other.duplicates;
        self.clock_skew_drops += other.clock_skew_drops;
        self.reordered += other.reordered;
        self.clamped_events += other.clamped_events;
        for s in &other.samples {
            if self.samples.len() >= MAX_SAMPLES {
                break;
            }
            self.samples.push(s.clone());
        }
    }

    /// Publish this report's counters into the global metrics registry as
    /// `ingest.*` counters (see [`METRIC_NAMES`]).
    ///
    /// The per-packet ingest loop accumulates into the report locally and
    /// calls this once per run, so the hot path never touches the registry.
    /// All nine counters are registered even when zero, keeping snapshot
    /// shape stable across clean and dirty runs.
    pub fn emit_metrics(&self) {
        let r = behaviot_obs::metrics();
        for (name, (_, v)) in METRIC_NAMES.iter().zip(self.counters()) {
            r.counter(name).add(v);
        }
    }

    /// Typed view over the `ingest.*` counters of a metrics snapshot — the
    /// registry is the source of truth after a run; this reconstitutes the
    /// struct shape for code that wants field access. Anomaly samples are
    /// not represented in metrics, so `samples` comes back empty.
    pub fn from_snapshot(snap: &behaviot_obs::MetricsSnapshot) -> Self {
        let get = |n: &str| snap.counter(n).unwrap_or(0);
        Self {
            bad_record_headers: get("ingest.bad_record_headers"),
            resyncs: get("ingest.resyncs"),
            resync_skipped_bytes: get("ingest.resync_skipped_bytes"),
            truncated_tail: get("ingest.truncated_tail"),
            corrupt_frames: get("ingest.corrupt_frames"),
            duplicates: get("ingest.duplicates"),
            clock_skew_drops: get("ingest.clock_skew_drops"),
            reordered: get("ingest.reordered"),
            clamped_events: get("ingest.clamped_events"),
            samples: Vec::new(),
        }
    }

    /// One-line drop summary, e.g. `dropped 3 (0.125%)`, shared by the
    /// harness and chaos printouts.
    pub fn drop_summary(&self, records_total: u64) -> String {
        format!(
            "dropped {} ({:.3}%)",
            self.dropped_records(),
            self.drop_frac(records_total) * 100.0
        )
    }

    /// The category counters as `(label, count)` pairs, in a stable order
    /// (used by reports and by counter-equality assertions in tests).
    pub fn counters(&self) -> [(&'static str, u64); 9] {
        [
            ("bad_record_headers", self.bad_record_headers),
            ("resyncs", self.resyncs),
            ("resync_skipped_bytes", self.resync_skipped_bytes),
            ("truncated_tail", self.truncated_tail),
            ("corrupt_frames", self.corrupt_frames),
            ("duplicates", self.duplicates),
            ("clock_skew_drops", self.clock_skew_drops),
            ("reordered", self.reordered),
            ("clamped_events", self.clamped_events),
        ]
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "ingest: clean (nothing ignored)");
        }
        write!(f, "ingest:")?;
        for (label, n) in self.counters() {
            if n > 0 {
                write!(f, " {label}={n}")?;
            }
        }
        for s in &self.samples {
            write!(
                f,
                "\n  sample [{}] record {} ts {:.6}: {}",
                s.category.label(),
                s.index,
                s.ts,
                s.detail
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_is_clean() {
        let r = IngestReport::new();
        assert!(r.is_clean());
        assert_eq!(r.dropped_records(), 0);
        assert_eq!(r.drop_frac(100), 0.0);
        assert_eq!(r.to_string(), "ingest: clean (nothing ignored)");
    }

    #[test]
    fn note_counts_and_samples() {
        let mut r = IngestReport::new();
        for i in 0..20 {
            r.note(IngestCategory::CorruptFrame, i, i as f64, "checksum");
        }
        r.note(IngestCategory::Reordered, 21, 21.0, "late");
        assert_eq!(r.corrupt_frames, 20);
        assert_eq!(r.reordered, 1);
        assert_eq!(r.samples.len(), MAX_SAMPLES);
        assert!(!r.is_clean());
        // reordered does not count as a drop
        assert_eq!(r.dropped_records(), 20);
        assert!((r.drop_frac(40) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_counters() {
        let mut a = IngestReport::new();
        a.note(IngestCategory::Duplicate, 0, 0.0, "dup");
        let mut b = IngestReport::new();
        b.note(IngestCategory::ClockSkew, 1, 1.0, "skew");
        b.resync_skipped_bytes = 7;
        a.merge(&b);
        assert_eq!(a.duplicates, 1);
        assert_eq!(a.clock_skew_drops, 1);
        assert_eq!(a.resync_skipped_bytes, 7);
        assert_eq!(a.samples.len(), 2);
    }

    #[test]
    fn emit_metrics_round_trips_through_snapshot() {
        // One test fn (not several) because it exercises the process-global
        // registry; parallel sibling tests must not touch `ingest.*`.
        let mut r = IngestReport::new();
        r.note(IngestCategory::Duplicate, 2, 2.0, "dup");
        r.note(IngestCategory::Reordered, 3, 3.0, "late");
        r.resync_skipped_bytes = 11;
        behaviot_obs::metrics().reset();
        r.emit_metrics();
        let snap = behaviot_obs::metrics().snapshot();
        // All nine names registered, even zero ones.
        for name in METRIC_NAMES {
            assert!(snap.counter(name).is_some(), "{name} missing");
        }
        let view = IngestReport::from_snapshot(&snap);
        assert_eq!(view.duplicates, 1);
        assert_eq!(view.reordered, 1);
        assert_eq!(view.resync_skipped_bytes, 11);
        assert_eq!(view.counters(), r.counters());
        assert!(view.samples.is_empty());
    }

    #[test]
    fn drop_summary_formats() {
        let mut r = IngestReport::new();
        r.note(IngestCategory::CorruptFrame, 0, 0.0, "checksum");
        assert_eq!(r.drop_summary(800), "dropped 1 (0.125%)");
    }

    #[test]
    fn display_lists_nonzero_counters() {
        let mut r = IngestReport::new();
        r.note(IngestCategory::BadRecordHeader, 3, 9.5, "len field mangled");
        let s = r.to_string();
        assert!(s.contains("bad_record_headers=1"));
        assert!(s.contains("record 3"));
        assert!(!s.contains("duplicates="));
    }
}
