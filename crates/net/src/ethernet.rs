//! Ethernet II frame encoding and parsing.

use crate::{MacAddr, NetError, Result};

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;
/// EtherType for IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86DD;

/// Length of an Ethernet II header.
pub const HEADER_LEN: usize = 14;

/// A parsed Ethernet II header plus a view of the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame<'a> {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType (e.g. [`ETHERTYPE_IPV4`]).
    pub ethertype: u16,
    /// The payload bytes following the header.
    pub payload: &'a [u8],
}

/// Encode an Ethernet II frame around `payload`.
pub fn encode(dst: MacAddr, src: MacAddr, ethertype: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&dst.0);
    out.extend_from_slice(&src.0);
    out.extend_from_slice(&ethertype.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse an Ethernet II frame.
pub fn parse(bytes: &[u8]) -> Result<EthernetFrame<'_>> {
    if bytes.len() < HEADER_LEN {
        return Err(NetError::Truncated {
            what: "ethernet",
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let mut dst = [0u8; 6];
    let mut src = [0u8; 6];
    dst.copy_from_slice(&bytes[0..6]);
    src.copy_from_slice(&bytes[6..12]);
    let ethertype = u16::from_be_bytes([bytes[12], bytes[13]]);
    Ok(EthernetFrame {
        dst: MacAddr(dst),
        src: MacAddr(src),
        ethertype,
        payload: &bytes[14..],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dst = MacAddr::from_index(1);
        let src = MacAddr::from_index(2);
        let payload = b"hello ethernet";
        let frame = encode(dst, src, ETHERTYPE_IPV4, payload);
        let parsed = parse(&frame).unwrap();
        assert_eq!(parsed.dst, dst);
        assert_eq!(parsed.src, src);
        assert_eq!(parsed.ethertype, ETHERTYPE_IPV4);
        assert_eq!(parsed.payload, payload);
    }

    #[test]
    fn truncated() {
        assert!(matches!(parse(&[0u8; 13]), Err(NetError::Truncated { .. })));
    }

    #[test]
    fn empty_payload_ok() {
        let frame = encode(
            MacAddr::BROADCAST,
            MacAddr::from_index(0),
            ETHERTYPE_ARP,
            &[],
        );
        let parsed = parse(&frame).unwrap();
        assert!(parsed.payload.is_empty());
        assert_eq!(parsed.dst, MacAddr::BROADCAST);
    }
}
