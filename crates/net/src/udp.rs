//! UDP datagram encoding and parsing.

use crate::ipv4::transport_checksum;
use crate::{NetError, Result};
use std::net::Ipv4Addr;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A parsed UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: &'a [u8],
}

/// Encode a UDP datagram with a valid checksum.
pub fn encode(
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let len = (HEADER_LEN + payload.len()) as u16;
    let mut dg = Vec::with_capacity(len as usize);
    dg.extend_from_slice(&src_port.to_be_bytes());
    dg.extend_from_slice(&dst_port.to_be_bytes());
    dg.extend_from_slice(&len.to_be_bytes());
    dg.extend_from_slice(&[0, 0]); // checksum placeholder
    dg.extend_from_slice(payload);
    let ck = transport_checksum(src_ip, dst_ip, 17, &dg);
    dg[6..8].copy_from_slice(&ck.to_be_bytes());
    dg
}

/// Parse a UDP datagram, verifying length and (if nonzero) checksum.
pub fn parse<'a>(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, bytes: &'a [u8]) -> Result<UdpDatagram<'a>> {
    if bytes.len() < HEADER_LEN {
        return Err(NetError::Truncated {
            what: "udp",
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
    if len < HEADER_LEN || bytes.len() < len {
        return Err(NetError::Invalid {
            what: "udp",
            reason: "length inconsistent",
        });
    }
    let expect = u16::from_be_bytes([bytes[6], bytes[7]]);
    if expect != 0 {
        let mut sum_input = bytes[..len].to_vec();
        sum_input[6] = 0;
        sum_input[7] = 0;
        if transport_checksum(src_ip, dst_ip, 17, &sum_input) != expect {
            return Err(NetError::Invalid {
                what: "udp",
                reason: "checksum mismatch",
            });
        }
    }
    Ok(UdpDatagram {
        src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
        dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
        payload: &bytes[HEADER_LEN..len],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 5);
    const B: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    #[test]
    fn roundtrip() {
        let dg = encode(A, B, 5353, 53, b"dns query");
        let parsed = parse(A, B, &dg).unwrap();
        assert_eq!(parsed.src_port, 5353);
        assert_eq!(parsed.dst_port, 53);
        assert_eq!(parsed.payload, b"dns query");
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut dg = encode(A, B, 1, 2, b"x");
        dg[6] = 0;
        dg[7] = 0;
        assert!(parse(A, B, &dg).is_ok());
    }

    #[test]
    fn corruption_detected() {
        let mut dg = encode(A, B, 1, 2, b"payload");
        *dg.last_mut().unwrap() ^= 0x80;
        assert!(parse(A, B, &dg).is_err());
    }

    #[test]
    fn length_field_bounds_payload() {
        let mut dg = encode(A, B, 1, 2, b"abc");
        dg.extend_from_slice(b"trailing-junk");
        let parsed = parse(A, B, &dg).unwrap();
        assert_eq!(parsed.payload, b"abc");
    }

    #[test]
    fn truncated() {
        assert!(matches!(
            parse(A, B, &[1, 2, 3]),
            Err(NetError::Truncated { .. })
        ));
    }
}
