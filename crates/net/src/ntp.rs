//! NTPv4 packet encoding/parsing (RFC 5905, header only).
//!
//! IoT devices sync clocks constantly — the paper finds 17 distinct NTP
//! servers across the fleet, some in third-party jurisdictions, and treats
//! NTP exchanges as one of the standard periodic models (e.g.
//! `NTP-*.pool.ntp.org-3603`). The byte-level simulator path emits real
//! NTP packets so downstream tooling (Wireshark, other analyzers) sees
//! valid traffic.

use crate::{NetError, Result};

/// NTP packet length (no extensions).
pub const PACKET_LEN: usize = 48;

/// Protocol mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Client request.
    Client,
    /// Server response.
    Server,
    /// Anything else RFC 5905 defines (broadcast, symmetric, ...).
    Other(u8),
}

impl Mode {
    fn to_bits(self) -> u8 {
        match self {
            Mode::Client => 3,
            Mode::Server => 4,
            Mode::Other(m) => m & 0x7,
        }
    }

    fn from_bits(b: u8) -> Self {
        match b & 0x7 {
            3 => Mode::Client,
            4 => Mode::Server,
            m => Mode::Other(m),
        }
    }
}

/// A parsed NTP header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NtpPacket {
    /// Leap indicator (0..=3).
    pub leap: u8,
    /// Version (4 for NTPv4).
    pub version: u8,
    /// Mode.
    pub mode: Mode,
    /// Stratum (0 = unspecified, 1 = primary, ...).
    pub stratum: u8,
    /// Transmit timestamp in NTP 64-bit format (seconds since 1900 in the
    /// upper 32 bits).
    pub transmit_ts: u64,
}

/// Encode an NTP packet. `unix_seconds` fills the transmit timestamp
/// (converted to the NTP 1900 epoch; fractional part zero).
pub fn encode(mode: Mode, stratum: u8, unix_seconds: f64) -> Vec<u8> {
    let mut out = vec![0u8; PACKET_LEN];
    out[0] = (4 << 3) | mode.to_bits(); // LI=0, VN=4
    out[1] = stratum;
    out[2] = 6; // poll
    out[3] = 0xEC; // precision (~2^-20, typical)
                   // root delay/dispersion/refid left zero for clients.
    const NTP_EPOCH_OFFSET: f64 = 2_208_988_800.0; // 1900 -> 1970
    let ntp_secs = (unix_seconds + NTP_EPOCH_OFFSET).max(0.0);
    let secs = ntp_secs as u64;
    let frac = ((ntp_secs - secs as f64) * 4294967296.0) as u64;
    let ts = (secs << 32) | frac;
    out[40..48].copy_from_slice(&ts.to_be_bytes());
    out
}

/// Parse an NTP header.
pub fn parse(bytes: &[u8]) -> Result<NtpPacket> {
    if bytes.len() < PACKET_LEN {
        return Err(NetError::Truncated {
            what: "ntp",
            needed: PACKET_LEN,
            got: bytes.len(),
        });
    }
    let version = (bytes[0] >> 3) & 0x7;
    if !(1..=4).contains(&version) {
        return Err(NetError::Invalid {
            what: "ntp",
            reason: "bad version",
        });
    }
    Ok(NtpPacket {
        leap: bytes[0] >> 6,
        version,
        mode: Mode::from_bits(bytes[0]),
        stratum: bytes[1],
        transmit_ts: u64::from_be_bytes(bytes[40..48].try_into().expect("bounded above")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let pkt = encode(Mode::Client, 0, 1_700_000_000.5);
        let parsed = parse(&pkt).unwrap();
        assert_eq!(parsed.version, 4);
        assert_eq!(parsed.mode, Mode::Client);
        assert_eq!(parsed.stratum, 0);
        // Transmit timestamp converts back to ~the unix time.
        let secs = (parsed.transmit_ts >> 32) as f64 - 2_208_988_800.0;
        assert!((secs - 1_700_000_000.0).abs() < 1.0);
    }

    #[test]
    fn server_mode() {
        let pkt = encode(Mode::Server, 2, 0.0);
        let parsed = parse(&pkt).unwrap();
        assert_eq!(parsed.mode, Mode::Server);
        assert_eq!(parsed.stratum, 2);
    }

    #[test]
    fn truncated_and_invalid() {
        assert!(parse(&[0u8; 40]).is_err());
        let mut pkt = encode(Mode::Client, 0, 0.0);
        pkt[0] = 0b00_111_011; // version 7
        assert!(matches!(parse(&pkt), Err(NetError::Invalid { .. })));
    }

    #[test]
    fn exotic_modes_preserved() {
        let pkt = encode(Mode::Other(5), 1, 0.0);
        assert_eq!(parse(&pkt).unwrap().mode, Mode::Other(5));
    }
}
