//! Network substrate for BehavIoT.
//!
//! BehavIoT observes (often encrypted) IP traffic at the home gateway and
//! never inspects payloads beyond protocol headers, DNS responses and the
//! TLS Server Name Indication. This crate provides everything the pipeline
//! and the testbed simulator need to produce and consume such traffic:
//!
//! * packet header encoding/parsing for Ethernet II, IPv4, TCP and UDP with
//!   correct checksums ([`ethernet`], [`ipv4`], [`tcp`], [`udp`]),
//! * a libpcap classic file reader/writer ([`pcap`]),
//! * a DNS message builder/parser sufficient to extract `IP → domain`
//!   mappings from responses ([`dns`]),
//! * a TLS ClientHello builder/parser for SNI extraction ([`tls`]),
//! * NTP, ARP and ICMP-echo codecs for the remaining LAN chatter a real
//!   capture contains ([`ntp`], [`arp`], [`icmp`]).
//!
//! All parsers are total: malformed input yields an error, never a panic.

#![warn(missing_docs)]

pub mod arp;
pub mod dns;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod ntp;
pub mod pcap;
pub mod report;
pub mod tcp;
pub mod tls;
pub mod udp;

pub use report::{IngestCategory, IngestReport, IngestSample};

use std::fmt;

/// Errors produced by the parsers in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Input ended before the structure was complete.
    Truncated {
        /// Which structure was being parsed.
        what: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A field held a value the parser cannot accept.
    Invalid {
        /// Which structure was being parsed.
        what: &'static str,
        /// Human-readable description of the problem.
        reason: &'static str,
    },
    /// Wrapped I/O error (pcap file reading/writing).
    Io(String),
    /// A lossy-tolerant ingest run dropped more records than its configured
    /// error budget allows (`--max-drop-frac`).
    BudgetExceeded {
        /// Records dropped across all corruption categories.
        dropped: u64,
        /// Total records the stream was expected to carry.
        total: u64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: needed {needed} bytes, got {got}")
            }
            NetError::Invalid { what, reason } => write!(f, "invalid {what}: {reason}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::BudgetExceeded { dropped, total } => write!(
                f,
                "ingest error budget exceeded: dropped {dropped} of {total} records"
            ),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Deterministic locally-administered MAC derived from an index — used
    /// by the simulator to give each testbed device a stable address.
    pub fn from_index(idx: u32) -> Self {
        let b = idx.to_be_bytes();
        MacAddr([0x02, 0x42, b[0], b[1], b[2], b[3]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// Transport protocol of a flow, as BehavIoT distinguishes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Proto {
    /// TCP (IP protocol 6).
    Tcp,
    /// UDP (IP protocol 17).
    Udp,
}

impl Proto {
    /// IP protocol number.
    pub fn number(self) -> u8 {
        match self {
            Proto::Tcp => 6,
            Proto::Udp => 17,
        }
    }

    /// From an IP protocol number.
    pub fn from_number(n: u8) -> Option<Self> {
        match n {
            6 => Some(Proto::Tcp),
            17 => Some(Proto::Udp),
            _ => None,
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proto::Tcp => write!(f, "TCP"),
            Proto::Udp => write!(f, "UDP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr([0, 1, 2, 0xaa, 0xbb, 0xcc]).to_string(),
            "00:01:02:aa:bb:cc"
        );
    }

    #[test]
    fn mac_from_index_stable_and_unique() {
        assert_eq!(MacAddr::from_index(7), MacAddr::from_index(7));
        assert_ne!(MacAddr::from_index(7), MacAddr::from_index(8));
    }

    #[test]
    fn proto_roundtrip() {
        assert_eq!(Proto::from_number(Proto::Tcp.number()), Some(Proto::Tcp));
        assert_eq!(Proto::from_number(Proto::Udp.number()), Some(Proto::Udp));
        assert_eq!(Proto::from_number(1), None);
    }

    #[test]
    fn error_display() {
        let e = NetError::Truncated {
            what: "ipv4",
            needed: 20,
            got: 3,
        };
        assert!(e.to_string().contains("ipv4"));
    }
}
