//! Minimal DNS message builder/parser.
//!
//! BehavIoT annotates flows with destination domain names extracted from DNS
//! responses observed at the gateway (§4.1). We implement enough of RFC 1035
//! to build queries/responses for A records and to parse responses back into
//! `(name, ip)` pairs, including compression-pointer handling on the parse
//! side (with loop protection).

use crate::{NetError, Result};
use std::net::Ipv4Addr;

/// Record type A (host address).
pub const TYPE_A: u16 = 1;
/// Class IN.
pub const CLASS_IN: u16 = 1;

/// A parsed DNS answer of type A.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsAnswer {
    /// The owner name, lowercase, without trailing dot.
    pub name: String,
    /// The address the name resolves to.
    pub addr: Ipv4Addr,
    /// Time to live.
    pub ttl: u32,
}

/// A parsed DNS message (only the parts BehavIoT consumes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction id.
    pub id: u16,
    /// Is this a response (QR bit)?
    pub is_response: bool,
    /// Question names (lowercase, no trailing dot).
    pub questions: Vec<String>,
    /// A-record answers.
    pub answers: Vec<DnsAnswer>,
}

fn encode_name(name: &str, out: &mut Vec<u8>) -> Result<()> {
    for label in name.trim_end_matches('.').split('.') {
        if label.is_empty() || label.len() > 63 {
            return Err(NetError::Invalid {
                what: "dns name",
                reason: "bad label length",
            });
        }
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
    Ok(())
}

/// Build an A-record query for `name` with transaction id `id`.
pub fn build_query(id: u16, name: &str) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(17 + name.len());
    out.extend_from_slice(&id.to_be_bytes());
    out.extend_from_slice(&0x0100u16.to_be_bytes()); // RD
    out.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
    out.extend_from_slice(&[0, 0, 0, 0, 0, 0]); // AN/NS/AR
    encode_name(name, &mut out)?;
    out.extend_from_slice(&TYPE_A.to_be_bytes());
    out.extend_from_slice(&CLASS_IN.to_be_bytes());
    Ok(out)
}

/// Build a response resolving `name` to `addrs` (one A record each).
pub fn build_response(id: u16, name: &str, addrs: &[Ipv4Addr], ttl: u32) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&id.to_be_bytes());
    out.extend_from_slice(&0x8180u16.to_be_bytes()); // QR, RD, RA
    out.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
    out.extend_from_slice(&(addrs.len() as u16).to_be_bytes()); // ANCOUNT
    out.extend_from_slice(&[0, 0, 0, 0]); // NS/AR
    encode_name(name, &mut out)?;
    out.extend_from_slice(&TYPE_A.to_be_bytes());
    out.extend_from_slice(&CLASS_IN.to_be_bytes());
    for addr in addrs {
        // Compression pointer to the question name at offset 12.
        out.extend_from_slice(&0xc00cu16.to_be_bytes());
        out.extend_from_slice(&TYPE_A.to_be_bytes());
        out.extend_from_slice(&CLASS_IN.to_be_bytes());
        out.extend_from_slice(&ttl.to_be_bytes());
        out.extend_from_slice(&4u16.to_be_bytes());
        out.extend_from_slice(&addr.octets());
    }
    Ok(out)
}

fn parse_name(bytes: &[u8], mut pos: usize) -> Result<(String, usize)> {
    let mut labels: Vec<String> = Vec::new();
    let mut jumped = false;
    let mut end_pos = pos;
    let mut hops = 0;
    loop {
        let len = *bytes.get(pos).ok_or(NetError::Truncated {
            what: "dns name",
            needed: pos + 1,
            got: bytes.len(),
        })? as usize;
        if len & 0xc0 == 0xc0 {
            // Compression pointer.
            let b2 = *bytes.get(pos + 1).ok_or(NetError::Truncated {
                what: "dns pointer",
                needed: pos + 2,
                got: bytes.len(),
            })? as usize;
            let target = ((len & 0x3f) << 8) | b2;
            if !jumped {
                end_pos = pos + 2;
                jumped = true;
            }
            hops += 1;
            if hops > 16 {
                return Err(NetError::Invalid {
                    what: "dns name",
                    reason: "pointer loop",
                });
            }
            if target >= pos && !jumped {
                return Err(NetError::Invalid {
                    what: "dns name",
                    reason: "forward pointer",
                });
            }
            pos = target;
            continue;
        }
        if len == 0 {
            if !jumped {
                end_pos = pos + 1;
            }
            break;
        }
        if len > 63 {
            return Err(NetError::Invalid {
                what: "dns name",
                reason: "label too long",
            });
        }
        let start = pos + 1;
        let stop = start + len;
        if stop > bytes.len() {
            return Err(NetError::Truncated {
                what: "dns label",
                needed: stop,
                got: bytes.len(),
            });
        }
        labels.push(String::from_utf8_lossy(&bytes[start..stop]).to_lowercase());
        if labels.len() > 128 {
            return Err(NetError::Invalid {
                what: "dns name",
                reason: "too many labels",
            });
        }
        pos = stop;
    }
    Ok((labels.join("."), end_pos))
}

/// Parse a DNS message (header, questions, A answers; other record types are
/// skipped gracefully).
pub fn parse(bytes: &[u8]) -> Result<DnsMessage> {
    if bytes.len() < 12 {
        return Err(NetError::Truncated {
            what: "dns header",
            needed: 12,
            got: bytes.len(),
        });
    }
    let id = u16::from_be_bytes([bytes[0], bytes[1]]);
    let flags = u16::from_be_bytes([bytes[2], bytes[3]]);
    let qdcount = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
    let ancount = u16::from_be_bytes([bytes[6], bytes[7]]) as usize;
    if qdcount > 32 || ancount > 256 {
        return Err(NetError::Invalid {
            what: "dns",
            reason: "implausible record counts",
        });
    }
    let mut pos = 12;
    let mut questions = Vec::with_capacity(qdcount);
    for _ in 0..qdcount {
        let (name, next) = parse_name(bytes, pos)?;
        pos = next + 4; // qtype + qclass
        if pos > bytes.len() {
            return Err(NetError::Truncated {
                what: "dns question",
                needed: pos,
                got: bytes.len(),
            });
        }
        questions.push(name);
    }
    let mut answers = Vec::new();
    for _ in 0..ancount {
        let (name, next) = parse_name(bytes, pos)?;
        pos = next;
        if pos + 10 > bytes.len() {
            return Err(NetError::Truncated {
                what: "dns answer",
                needed: pos + 10,
                got: bytes.len(),
            });
        }
        let rtype = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]);
        let ttl = u32::from_be_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let rdlen = u16::from_be_bytes([bytes[pos + 8], bytes[pos + 9]]) as usize;
        pos += 10;
        if pos + rdlen > bytes.len() {
            return Err(NetError::Truncated {
                what: "dns rdata",
                needed: pos + rdlen,
                got: bytes.len(),
            });
        }
        if rtype == TYPE_A && rdlen == 4 {
            let addr = Ipv4Addr::new(bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]);
            answers.push(DnsAnswer { name, addr, ttl });
        }
        pos += rdlen;
    }
    Ok(DnsMessage {
        id,
        is_response: flags & 0x8000 != 0,
        questions,
        answers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = build_query(0x1234, "devs.tplinkcloud.com").unwrap();
        let msg = parse(&q).unwrap();
        assert_eq!(msg.id, 0x1234);
        assert!(!msg.is_response);
        assert_eq!(msg.questions, vec!["devs.tplinkcloud.com".to_string()]);
        assert!(msg.answers.is_empty());
    }

    #[test]
    fn response_roundtrip_with_compression() {
        let addrs = [Ipv4Addr::new(52, 1, 2, 3), Ipv4Addr::new(52, 1, 2, 4)];
        let r = build_response(7, "Example.COM", &addrs, 300).unwrap();
        let msg = parse(&r).unwrap();
        assert!(msg.is_response);
        assert_eq!(msg.questions, vec!["example.com".to_string()]);
        assert_eq!(msg.answers.len(), 2);
        assert_eq!(msg.answers[0].name, "example.com");
        assert_eq!(msg.answers[0].addr, addrs[0]);
        assert_eq!(msg.answers[1].addr, addrs[1]);
        assert_eq!(msg.answers[0].ttl, 300);
    }

    #[test]
    fn rejects_empty_label() {
        assert!(build_query(1, "bad..name").is_err());
    }

    #[test]
    fn pointer_loop_detected() {
        // Header + a name that is a pointer to itself at offset 12.
        let mut bytes = vec![0u8; 12];
        bytes[5] = 1; // QDCOUNT = 1
        bytes.extend_from_slice(&[0xc0, 0x0c]); // pointer to offset 12 (itself)
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(parse(&bytes), Err(NetError::Invalid { .. })));
    }

    #[test]
    fn truncated_messages() {
        assert!(parse(&[0u8; 5]).is_err());
        let q = build_query(1, "a.b").unwrap();
        assert!(parse(&q[..q.len() - 2]).is_err());
    }

    #[test]
    fn implausible_counts_rejected() {
        let mut bytes = vec![0u8; 12];
        bytes[6] = 0xff;
        bytes[7] = 0xff; // ANCOUNT = 65535
        assert!(parse(&bytes).is_err());
    }

    #[test]
    fn non_a_records_skipped() {
        // Build a response then flip the answer type to AAAA (28).
        let r = build_response(9, "x.io", &[Ipv4Addr::new(1, 2, 3, 4)], 60).unwrap();
        let mut r2 = r.clone();
        // answer starts right after question; find the 0xc00c pointer
        let idx = r2.windows(2).position(|w| w == [0xc0, 0x0c]).unwrap();
        r2[idx + 3] = 28;
        let msg = parse(&r2).unwrap();
        assert!(msg.answers.is_empty());
    }
}
