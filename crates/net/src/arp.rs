//! ARP over Ethernet/IPv4 (RFC 826) — request/reply encode and parse.
//!
//! A gateway capture of a real smart home is full of ARP chatter; the
//! byte-level simulator path can emit it, and the frame parser needs to
//! recognize and skip it (the pipeline models only IP flows, as the paper
//! scopes in §2).

use crate::{MacAddr, NetError, Result};
use std::net::Ipv4Addr;

/// ARP payload length for Ethernet/IPv4.
pub const PACKET_LEN: usize = 28;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// A parsed ARP packet (Ethernet/IPv4 flavor only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: Operation,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

/// Encode an ARP packet.
pub fn encode(
    op: Operation,
    sender_mac: MacAddr,
    sender_ip: Ipv4Addr,
    target_mac: MacAddr,
    target_ip: Ipv4Addr,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(PACKET_LEN);
    out.extend_from_slice(&1u16.to_be_bytes()); // HTYPE Ethernet
    out.extend_from_slice(&0x0800u16.to_be_bytes()); // PTYPE IPv4
    out.push(6); // HLEN
    out.push(4); // PLEN
    out.extend_from_slice(
        &match op {
            Operation::Request => 1u16,
            Operation::Reply => 2u16,
        }
        .to_be_bytes(),
    );
    out.extend_from_slice(&sender_mac.0);
    out.extend_from_slice(&sender_ip.octets());
    out.extend_from_slice(&target_mac.0);
    out.extend_from_slice(&target_ip.octets());
    out
}

/// Parse an ARP packet; only the Ethernet/IPv4 combination is accepted.
pub fn parse(bytes: &[u8]) -> Result<ArpPacket> {
    if bytes.len() < PACKET_LEN {
        return Err(NetError::Truncated {
            what: "arp",
            needed: PACKET_LEN,
            got: bytes.len(),
        });
    }
    if bytes[0..2] != [0, 1] || bytes[2..4] != [8, 0] || bytes[4] != 6 || bytes[5] != 4 {
        return Err(NetError::Invalid {
            what: "arp",
            reason: "not ethernet/ipv4",
        });
    }
    let op = match u16::from_be_bytes([bytes[6], bytes[7]]) {
        1 => Operation::Request,
        2 => Operation::Reply,
        _ => {
            return Err(NetError::Invalid {
                what: "arp",
                reason: "unknown operation",
            })
        }
    };
    let mac = |o: usize| {
        let mut m = [0u8; 6];
        m.copy_from_slice(&bytes[o..o + 6]);
        MacAddr(m)
    };
    let ip = |o: usize| Ipv4Addr::new(bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]);
    Ok(ArpPacket {
        op,
        sender_mac: mac(8),
        sender_ip: ip(14),
        target_mac: mac(18),
        target_ip: ip(24),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP_A: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
    const IP_B: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 1);

    #[test]
    fn request_roundtrip() {
        let pkt = encode(
            Operation::Request,
            MacAddr::from_index(1),
            IP_A,
            MacAddr([0; 6]),
            IP_B,
        );
        assert_eq!(pkt.len(), PACKET_LEN);
        let parsed = parse(&pkt).unwrap();
        assert_eq!(parsed.op, Operation::Request);
        assert_eq!(parsed.sender_ip, IP_A);
        assert_eq!(parsed.target_ip, IP_B);
    }

    #[test]
    fn reply_roundtrip() {
        let pkt = encode(
            Operation::Reply,
            MacAddr::from_index(2),
            IP_B,
            MacAddr::from_index(1),
            IP_A,
        );
        let parsed = parse(&pkt).unwrap();
        assert_eq!(parsed.op, Operation::Reply);
        assert_eq!(parsed.sender_mac, MacAddr::from_index(2));
        assert_eq!(parsed.target_mac, MacAddr::from_index(1));
    }

    #[test]
    fn rejects_non_ipv4_and_truncation() {
        let mut pkt = encode(
            Operation::Request,
            MacAddr([1; 6]),
            IP_A,
            MacAddr([0; 6]),
            IP_B,
        );
        pkt[3] = 0xdd; // PTYPE -> not IPv4
        assert!(matches!(parse(&pkt), Err(NetError::Invalid { .. })));
        assert!(matches!(parse(&[0u8; 10]), Err(NetError::Truncated { .. })));
    }
}
