//! Property tests for the recovery-mode pcap reader: arbitrary byte
//! mutations of a valid capture must never panic the reader, never make it
//! loop forever, and every record it does yield must round-trip through the
//! strict header parser.

use behaviot_net::pcap::{PcapReader, PcapRecord, PcapWriter};
use proptest::prelude::*;
use std::io::Cursor;

/// Serialize base records into a valid pcap buffer.
fn write_capture(records: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for (ts, data) in records {
        w.write_record(&PcapRecord {
            ts: *ts as f64 * 0.01,
            data: data.clone(),
        })
        .unwrap();
    }
    w.finish().unwrap()
}

/// One byte-level mutation, decoded from a `(kind, pos, value)` triple.
fn apply_mutation(buf: &mut Vec<u8>, kind: u8, pos: usize, value: u8) {
    if buf.is_empty() {
        return;
    }
    let pos = pos % buf.len();
    match kind % 3 {
        0 => buf[pos] ^= value | 1, // flip bits (never a no-op)
        1 => buf.insert(pos, value),
        _ => buf.truncate(pos.max(1)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Recovery mode is total over mutated captures: no panic, bounded
    /// yield count (termination), and every yielded record re-serializes
    /// into bytes the strict reader parses back identically.
    #[test]
    fn mutated_capture_never_panics_and_yields_roundtrip_records(
        // Frame payloads are at least Ethernet-header sized: the recovery
        // plausibility predicate intentionally rejects sub-14-byte records,
        // so smaller ones would (correctly) not survive even a clean read.
        base in proptest::collection::vec(
            (0u32..100_000, proptest::collection::vec(any::<u8>(), 14..120)),
            0..30
        ),
        mutations in proptest::collection::vec(
            (any::<u8>(), 0usize..200_000, any::<u8>()),
            0..20
        )
    ) {
        let mut buf = write_capture(&base);
        for (kind, pos, value) in &mutations {
            apply_mutation(&mut buf, *kind, *pos, *value);
        }

        let total = buf.len();
        let mut reader = match PcapReader::new_recovering(Cursor::new(buf)) {
            Ok(r) => r,
            // Mutations hit the global header: rejecting it is the
            // correct non-panicking outcome.
            Err(_) => return,
        };

        let mut yielded: Vec<PcapRecord> = Vec::new();
        loop {
            match reader.next_record() {
                Ok(Some(rec)) => yielded.push(rec),
                Ok(None) => break,
                // Only real I/O errors may surface; a Cursor has none.
                Err(e) => panic!("recovery reader errored on mutated bytes: {e}"),
            }
            // Termination bound: each yield consumes at least a 16-byte
            // header, so a reader that yields more than len/16 + 1 records
            // is looping.
            prop_assert!(
                yielded.len() <= total / 16 + 1,
                "reader yielded {} records from {} bytes",
                yielded.len(),
                total
            );
        }

        // Every yielded record round-trips through the strict parser.
        // (Records whose mutated timestamp sits at the very top of the u32
        // second range are excluded: PcapWriter correctly refuses them when
        // microsecond rounding would overflow the field.)
        yielded.retain(|r| r.ts + 1.0 < u32::MAX as f64);
        if !yielded.is_empty() {
            let mut w = PcapWriter::new(Vec::new()).unwrap();
            for r in &yielded {
                w.write_record(r).unwrap();
            }
            let reserialized = w.finish().unwrap();
            let mut strict = PcapReader::new(Cursor::new(reserialized)).unwrap();
            for r in &yielded {
                let back = strict
                    .next_record()
                    .expect("strict reread failed")
                    .expect("strict reread ended early");
                prop_assert_eq!(&back.data, &r.data);
                prop_assert!((back.ts - r.ts).abs() < 2e-6);
            }
            prop_assert!(strict.next_record().unwrap().is_none());
        }

        // On the unmutated capture the same reader is exact and clean.
        let clean = write_capture(&base);
        let mut clean_reader = PcapReader::new_recovering(Cursor::new(clean)).unwrap();
        let clean_out = clean_reader.read_all().unwrap();
        prop_assert_eq!(clean_out.len(), base.len());
        prop_assert!(clean_reader.report().is_clean());
    }
}
